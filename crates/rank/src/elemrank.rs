//! The ElemRank power iteration and its formula variants.
//!
//! Since the pull-kernel rewrite, every variant is computed by flattening
//! the collection into a [`crate::csr::RankGraph`] (transposed CSR with
//! precomputed per-variant edge weights) and running the shared
//! multi-threaded pull iteration. The original per-element push/scatter
//! implementation survives only as the test oracle
//! ([`tests::compute_scatter_reference`]) that the property tests compare
//! the kernel against.

use crate::csr::{IterationParams, RankGraph, MAX_THREADS};
use xrank_graph::Collection;

/// Environment variable overriding the worker-thread count when
/// [`ElemRankParams::threads`] is `0` (auto). Ignored unless it parses as
/// a positive integer.
pub const THREADS_ENV_VAR: &str = "XRANK_THREADS";

/// Auto thread resolution grants one worker per this many vertices, so
/// small collections never pay thread-startup costs.
const AUTO_MIN_CHUNK: usize = 2048;

/// Parameters of the final ElemRank formula (paper defaults from
/// Section 3.2: `d1 = 0.35`, `d2 = 0.25`, `d3 = 0.25`, ε = `0.00002`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElemRankParams {
    /// Probability of navigating a hyperlink edge.
    pub d1: f64,
    /// Probability of navigating a forward containment edge (to a child).
    pub d2: f64,
    /// Probability of navigating a reverse containment edge (to the parent).
    pub d3: f64,
    /// Convergence threshold on the L1 change between iterations.
    pub epsilon: f64,
    /// Safety cap on iterations.
    pub max_iterations: usize,
    /// Worker threads for the power iteration: `0` resolves automatically
    /// (the `XRANK_THREADS` env var if set and valid, else
    /// `std::thread::available_parallelism`, scaled down for small
    /// graphs); `1` forces the exact single-threaded computation; any
    /// other value is used as-is (clamped to the vertex count).
    pub threads: usize,
}

impl Default for ElemRankParams {
    fn default() -> Self {
        ElemRankParams {
            d1: 0.35,
            d2: 0.25,
            d3: 0.25,
            epsilon: 2e-5,
            max_iterations: 500,
            threads: 0,
        }
    }
}

impl ElemRankParams {
    /// Total navigation probability `d1 + d2 + d3`.
    pub fn total_damping(&self) -> f64 {
        self.d1 + self.d2 + self.d3
    }

    /// Validates that the parameters define a probability distribution
    /// and a sane execution configuration.
    pub fn validate(&self) -> Result<(), String> {
        let ds = [self.d1, self.d2, self.d3];
        if ds.iter().any(|d| !(0.0..=1.0).contains(d) || !d.is_finite()) {
            return Err(format!("damping factors out of range: {ds:?}"));
        }
        if self.total_damping() >= 1.0 {
            return Err(format!("d1 + d2 + d3 = {} must be < 1", self.total_damping()));
        }
        if self.epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("epsilon must be positive".into());
        }
        if self.threads > MAX_THREADS {
            return Err(format!(
                "threads = {} exceeds the {MAX_THREADS} cap (0 = auto-detect)",
                self.threads
            ));
        }
        Ok(())
    }
}

/// Resolves a requested thread count against the graph size: an explicit
/// parameter (`requested > 0`) is honored but clamped to the vertex count;
/// auto mode (`0`) takes the `XRANK_THREADS` env var clamped to available
/// parallelism — oversubscribing a machine only timeshares one core and
/// slows the sweep down — or, with no env override, available parallelism
/// scaled down so each worker owns at least a few thousand rows. Always
/// returns at least 1; falls back to 1 when `available_parallelism` is
/// unavailable on the platform.
pub fn resolve_threads(requested: usize, n: usize) -> usize {
    if requested > 0 {
        return requested.clamp(1, n.max(1));
    }
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if let Some(t) = threads_from_env() {
        return t.min(hw).clamp(1, n.max(1));
    }
    hw.min((n / AUTO_MIN_CHUNK).max(1)).clamp(1, n.max(1))
}

/// The `XRANK_THREADS` override, if set to a positive integer. Any other
/// value (unset, empty, garbage, `0`) yields `None` — auto-detect.
pub fn threads_from_env() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

/// Which formula refinement to run (see crate docs for the lineage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankVariant {
    /// Refinement 1: all edges treated as hyperlinks, unidirectional.
    PageRankAdapted {
        /// Single damping factor (PageRank's `d`, typically 0.85).
        d: f64,
    },
    /// Refinement 2: reverse containment edges added, one damping factor,
    /// uniform split over all outgoing options.
    Bidirectional {
        /// Single damping factor.
        d: f64,
    },
    /// Refinement 3: hyperlinks (`d1`) separated from containment (`d2`,
    /// both directions uniformly).
    Discriminated {
        /// Hyperlink navigation probability.
        d1: f64,
        /// Containment (forward + reverse, split evenly) probability.
        d2: f64,
    },
    /// Refinement 4 — the paper's final formula.
    Final(ElemRankParams),
}

/// The outcome of a rank computation.
#[derive(Debug, Clone)]
pub struct RankResult {
    /// Per-element score, indexed by `ElemId`, summing to 1.
    pub scores: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the L1 residual fell below epsilon within the cap.
    pub converged: bool,
    /// Final L1 residual.
    pub residual: f64,
}

impl RankResult {
    /// Score of one element.
    pub fn score(&self, elem: u32) -> f64 {
        self.scores[elem as usize]
    }
}

/// Computes ElemRank with the paper's final formula.
pub fn elem_rank(collection: &Collection, params: &ElemRankParams) -> RankResult {
    compute(collection, RankVariant::Final(*params))
}

/// Computes ElemRank with the paper's final formula, warm-starting the
/// power iteration from `seed` when one is supplied. The fixed point —
/// and therefore the scores any converged run reports — does not depend
/// on the start vector; a good seed (e.g. the previous index generation's
/// rank vector mapped onto the new element ids) just reaches it in fewer
/// sweeps. An ill-shaped seed (wrong length, non-finite, negative, zero
/// mass) silently falls back to the cold random-jump start.
pub fn elem_rank_seeded(
    collection: &Collection,
    params: &ElemRankParams,
    seed: Option<Vec<f64>>,
) -> RankResult {
    params.validate().expect("invalid ElemRank parameters");
    let n = collection.element_count();
    if n == 0 {
        return RankResult { scores: Vec::new(), iterations: 0, converged: true, residual: 0.0 };
    }
    let variant = RankVariant::Final(*params);
    let graph = RankGraph::from_collection(collection, &variant);
    let threads = resolve_threads(params.threads, n);
    graph.power_iterate_from(
        &IterationParams { epsilon: params.epsilon, max_iterations: params.max_iterations, threads },
        seed,
    )
}

/// Computes element ranks under any [`RankVariant`] through the shared
/// pull-based CSR kernel.
pub fn compute(collection: &Collection, variant: RankVariant) -> RankResult {
    let (epsilon, max_iterations, requested_threads) = match variant {
        RankVariant::Final(p) => {
            p.validate().expect("invalid ElemRank parameters");
            (p.epsilon, p.max_iterations, p.threads)
        }
        _ => (2e-5, 500, 0),
    };
    let n = collection.element_count();
    if n == 0 {
        return RankResult { scores: Vec::new(), iterations: 0, converged: true, residual: 0.0 };
    }
    let graph = RankGraph::from_collection(collection, &variant);
    let threads = resolve_threads(requested_threads, n);
    graph.power_iterate(&IterationParams { epsilon, max_iterations, threads })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use xrank_graph::CollectionBuilder;

    /// The original push/scatter implementation, kept verbatim as the
    /// oracle the CSR pull kernel is property-tested against (with the
    /// zeroing-`fill` and fused-residual cleanups applied).
    pub(crate) fn compute_scatter_reference(
        collection: &Collection,
        variant: RankVariant,
    ) -> RankResult {
        let (epsilon, max_iterations) = match variant {
            RankVariant::Final(p) => (p.epsilon, p.max_iterations),
            _ => (2e-5, 500),
        };
        let n = collection.element_count();
        if n == 0 {
            return RankResult {
                scores: Vec::new(),
                iterations: 0,
                converged: true,
                residual: 0.0,
            };
        }

        let jump: Vec<f64> = match variant {
            RankVariant::Final(_) => {
                let nd = collection.doc_count() as f64;
                (0..n as u32)
                    .map(|e| {
                        let doc = collection.element(e).doc;
                        1.0 / (nd * collection.doc(doc).element_count as f64)
                    })
                    .collect()
            }
            _ => vec![1.0 / n as f64; n],
        };

        let mut scores = jump.clone();
        let mut next = vec![0.0f64; n];
        let mut iterations = 0;
        let mut residual = f64::INFINITY;

        while iterations < max_iterations {
            iterations += 1;
            next.fill(0.0);
            let mut dangling = 0.0f64;

            for (id, elem) in collection.elements() {
                let mass = scores[id as usize];
                if mass == 0.0 {
                    continue;
                }
                dangling += scatter(&variant, elem, mass, &mut next);
            }

            let total_nav = crate::csr::variant_total_nav(&variant);
            let base = 1.0 - total_nav + dangling;
            // One fused sweep: add the jump mass and accumulate the L1
            // residual against the previous iterate.
            residual = 0.0;
            for v in 0..n {
                next[v] += base * jump[v];
                residual += (scores[v] - next[v]).abs();
            }
            std::mem::swap(&mut scores, &mut next);
            if residual < epsilon {
                return RankResult { scores, iterations, converged: true, residual };
            }
        }
        RankResult { scores, iterations, converged: false, residual }
    }

    /// Distributes `mass * nav` along `elem`'s outgoing edges according to
    /// the variant. Returns the (undeliverable) dangling navigation mass.
    fn scatter(
        variant: &RankVariant,
        elem: &xrank_graph::Element,
        mass: f64,
        next: &mut [f64],
    ) -> f64 {
        let nh = elem.links_out.len();
        let nc = elem.children.len();
        let has_parent = elem.parent.is_some();

        match *variant {
            RankVariant::PageRankAdapted { d } => {
                let out = nh + nc;
                if out == 0 {
                    return mass * d;
                }
                let share = mass * d / out as f64;
                for &t in &elem.links_out {
                    next[t as usize] += share;
                }
                for &c in &elem.children {
                    next[c as usize] += share;
                }
                0.0
            }
            RankVariant::Bidirectional { d } => {
                let out = nh + nc + usize::from(has_parent);
                if out == 0 {
                    return mass * d;
                }
                let share = mass * d / out as f64;
                for &t in &elem.links_out {
                    next[t as usize] += share;
                }
                for &c in &elem.children {
                    next[c as usize] += share;
                }
                if let Some(p) = elem.parent {
                    next[p as usize] += share;
                }
                0.0
            }
            RankVariant::Discriminated { d1, d2 } => {
                let n_cont = nc + usize::from(has_parent);
                let (w1, w2) =
                    (if nh > 0 { d1 } else { 0.0 }, if n_cont > 0 { d2 } else { 0.0 });
                let avail = w1 + w2;
                if avail == 0.0 {
                    return mass * (d1 + d2);
                }
                let scale = (d1 + d2) / avail;
                if nh > 0 {
                    let share = mass * w1 * scale / nh as f64;
                    for &t in &elem.links_out {
                        next[t as usize] += share;
                    }
                }
                if n_cont > 0 {
                    let share = mass * w2 * scale / n_cont as f64;
                    for &c in &elem.children {
                        next[c as usize] += share;
                    }
                    if let Some(p) = elem.parent {
                        next[p as usize] += share;
                    }
                }
                0.0
            }
            RankVariant::Final(p) => {
                let w1 = if nh > 0 { p.d1 } else { 0.0 };
                let w2 = if nc > 0 { p.d2 } else { 0.0 };
                let w3 = if has_parent { p.d3 } else { 0.0 };
                let avail = w1 + w2 + w3;
                if avail == 0.0 {
                    return mass * p.total_damping();
                }
                let scale = p.total_damping() / avail;
                if nh > 0 {
                    let share = mass * w1 * scale / nh as f64;
                    for &t in &elem.links_out {
                        next[t as usize] += share;
                    }
                }
                if nc > 0 {
                    let share = mass * w2 * scale / nc as f64;
                    for &c in &elem.children {
                        next[c as usize] += share;
                    }
                }
                if let Some(parent) = elem.parent {
                    next[parent as usize] += mass * w3 * scale;
                }
                0.0
            }
        }
    }

    fn collection(xmls: &[(&str, &str)]) -> Collection {
        let mut b = CollectionBuilder::new();
        for (uri, xml) in xmls {
            b.add_xml_str(uri, xml).unwrap();
        }
        b.build()
    }

    fn assert_stochastic(r: &RankResult) {
        let sum: f64 = r.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "scores sum to {sum}, expected 1");
        assert!(r.scores.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn converges_and_is_stochastic_on_paper_example() {
        let c = collection(&[(
            "w",
            r#"<workshop><proceedings>
                 <paper id="1"><title>XQL</title><cite ref="2">x</cite></paper>
                 <paper id="2"><title>Xyleme</title></paper>
               </proceedings></workshop>"#,
        )]);
        let r = elem_rank(&c, &ElemRankParams::default());
        assert!(r.converged, "did not converge: residual {}", r.residual);
        assert_stochastic(&r);
    }

    #[test]
    fn cited_paper_outranks_uncited_sibling() {
        // paper 2 is cited by papers 1 and 3; paper 4 is not cited.
        let c = collection(&[(
            "w",
            r#"<proc>
                 <paper id="1"><cite ref="2">a</cite></paper>
                 <paper id="2"><t>popular</t></paper>
                 <paper id="3"><cite ref="2">b</cite></paper>
                 <paper id="4"><t>ignored</t></paper>
               </proc>"#,
        )]);
        let r = elem_rank(&c, &ElemRankParams::default());
        let find = |name: &str, nth: usize| {
            c.elements()
                .filter(|(_, e)| &*e.name == name)
                .nth(nth)
                .map(|(id, _)| id)
                .unwrap()
        };
        let p2 = find("paper", 1);
        let p4 = find("paper", 3);
        assert!(
            r.score(p2) > r.score(p4),
            "cited paper {} should outrank uncited {}",
            r.score(p2),
            r.score(p4)
        );
    }

    #[test]
    fn rank_propagates_to_subelements_of_important_elements() {
        // The title of a heavily-cited paper should outrank the title of an
        // uncited one — the paper's 'gray' anecdote (Section 5.2).
        let c = collection(&[(
            "w",
            r#"<proc>
                 <paper id="hot"><title>gray codes</title></paper>
                 <paper id="cold"><title>obscure topic</title></paper>
                 <p><cite ref="hot">x</cite></p><q><cite ref="hot">y</cite></q>
                 <p2><cite ref="hot">z</cite></p2>
               </proc>"#,
        )]);
        let r = elem_rank(&c, &ElemRankParams::default());
        let titles: Vec<u32> = c
            .elements()
            .filter(|(_, e)| &*e.name == "title")
            .map(|(id, _)| id)
            .collect();
        assert!(r.score(titles[0]) > r.score(titles[1]));
    }

    #[test]
    fn aggregate_reverse_containment_rewards_rich_parents() {
        // Two workshops; one contains three cited papers, the other one.
        // Final formula: the richer workshop must rank higher.
        let c = collection(&[(
            "w",
            r#"<root>
                 <workshop><paper id="a"><t>x</t></paper><paper id="b"><t>x</t></paper>
                   <paper id="c"><t>x</t></paper></workshop>
                 <workshop><paper id="d"><t>x</t></paper></workshop>
                 <refs><cite ref="a">.</cite><cite ref="b">.</cite><cite ref="c">.</cite>
                   <cite ref="d">.</cite></refs>
               </root>"#,
        )]);
        let r = elem_rank(&c, &ElemRankParams::default());
        let workshops: Vec<u32> = c
            .elements()
            .filter(|(_, e)| &*e.name == "workshop")
            .map(|(id, _)| id)
            .collect();
        assert!(
            r.score(workshops[0]) > r.score(workshops[1]),
            "workshop with 3 cited papers ({}) should outrank 1-paper workshop ({})",
            r.score(workshops[0]),
            r.score(workshops[1])
        );
    }

    #[test]
    fn all_variants_converge_and_are_stochastic() {
        let c = collection(&[
            ("a", r#"<r><x id="1"><y>text</y></x><z ref="1">t</z></r>"#),
            ("b", r#"<r><w href="a">link</w></r>"#),
        ]);
        for variant in [
            RankVariant::PageRankAdapted { d: 0.85 },
            RankVariant::Bidirectional { d: 0.85 },
            RankVariant::Discriminated { d1: 0.45, d2: 0.40 },
            RankVariant::Final(ElemRankParams::default()),
        ] {
            let r = compute(&c, variant);
            assert!(r.converged, "{variant:?} did not converge");
            assert_stochastic(&r);
        }
    }

    #[test]
    fn empty_collection() {
        let c = CollectionBuilder::new().build();
        let r = elem_rank(&c, &ElemRankParams::default());
        assert!(r.converged);
        assert!(r.scores.is_empty());
    }

    #[test]
    fn single_element_no_links_gets_all_mass() {
        let c = collection(&[("a", "<only/>")]);
        let r = elem_rank(&c, &ElemRankParams::default());
        assert_eq!(r.scores.len(), 1);
        assert!((r.scores[0] - 1.0).abs() < 1e-9);
        assert!(r.converged);
    }

    #[test]
    fn params_validation() {
        assert!(ElemRankParams::default().validate().is_ok());
        let bad = ElemRankParams { d1: 0.5, d2: 0.4, d3: 0.2, ..Default::default() };
        assert!(bad.validate().is_err());
        let neg = ElemRankParams { d1: -0.1, ..Default::default() };
        assert!(neg.validate().is_err());
        let eps = ElemRankParams { epsilon: 0.0, ..Default::default() };
        assert!(eps.validate().is_err());
    }

    #[test]
    fn validate_rejects_thread_cap_violation() {
        let over = ElemRankParams { threads: MAX_THREADS + 1, ..Default::default() };
        assert!(over.validate().is_err(), "threads over the cap must be rejected");
        let at_cap = ElemRankParams { threads: MAX_THREADS, ..Default::default() };
        assert!(at_cap.validate().is_ok());
        let auto = ElemRankParams { threads: 0, ..Default::default() };
        assert!(auto.validate().is_ok(), "0 means auto-detect and is always valid");
    }

    #[test]
    fn resolve_threads_contract() {
        // An explicit request wins over env/auto but is clamped to the
        // vertex count; the degenerate n = 0 still resolves to 1 worker.
        assert_eq!(resolve_threads(3, 100_000), 3);
        assert_eq!(resolve_threads(8, 4), 4);
        assert_eq!(resolve_threads(5, 0), 1);
        // Auto mode always lands in [1, n] even if `available_parallelism`
        // is unavailable (its failure path falls back to one worker).
        let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        for n in [1usize, 7, 2048, 1 << 20] {
            let t = resolve_threads(0, n);
            assert!((1..=n).contains(&t), "auto resolved {t} for n = {n}");
            assert!(t <= hw, "auto must never oversubscribe: {t} > {hw} hw threads");
        }
    }


    #[test]
    fn env_override_reproduces_single_threaded_scores() {
        let c = collection(&[
            ("a", r#"<r><x id="1"><y>alpha beta</y><z>gamma</z></x><c ref="1">t</c></r>"#),
            ("b", r#"<r><p><q>delta</q></p><s ref="1">u</s></r>"#),
        ]);
        let explicit = elem_rank(&c, &ElemRankParams { threads: 1, ..Default::default() });

        std::env::set_var(THREADS_ENV_VAR, "1");
        assert_eq!(threads_from_env(), Some(1));
        let via_env = elem_rank(&c, &ElemRankParams::default());
        std::env::remove_var(THREADS_ENV_VAR);

        assert_eq!(via_env.iterations, explicit.iterations);
        assert!(
            via_env
                .scores
                .iter()
                .zip(&explicit.scores)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "XRANK_THREADS=1 must be bit-for-bit identical to threads: 1"
        );

        // Garbage / zero values are ignored — auto-detect takes over
        // instead of panicking or spawning nothing.
        for bad in ["not-a-number", "", "0", "-3", "1.5"] {
            std::env::set_var(THREADS_ENV_VAR, bad);
            assert_eq!(threads_from_env(), None, "{bad:?} should fall back to auto");
        }

        // In auto mode an absurd XRANK_THREADS no longer oversubscribes:
        // workers time-sharing one core are pure overhead (the E1 sweep
        // used to report that as a 0.9x "speedup").
        let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        std::env::set_var(THREADS_ENV_VAR, "4096");
        let resolved = resolve_threads(0, 1 << 20);
        std::env::remove_var(THREADS_ENV_VAR);
        assert!(resolved <= hw, "env auto request resolved {resolved} > {hw} hw threads");
    }

    #[test]
    fn seeded_iteration_converges_faster_to_the_same_fixed_point() {
        let c = collection(&[
            ("a", r#"<r><x id="1"><y>alpha beta</y><z>gamma</z></x><c ref="1">t</c></r>"#),
            ("b", r#"<r><p><q>delta</q></p><s ref="1">u</s></r>"#),
        ]);
        let params = ElemRankParams { threads: 1, ..Default::default() };
        let cold = elem_rank(&c, &params);
        assert!(cold.converged);

        // Seeding from the converged vector must re-converge immediately
        // (a single confirming sweep) and land within epsilon of it.
        let warm = elem_rank_seeded(&c, &params, Some(cold.scores.clone()));
        assert!(warm.converged);
        assert!(
            warm.iterations <= 2,
            "perfect seed should confirm in <=2 sweeps, took {}",
            warm.iterations
        );
        assert!(warm.iterations < cold.iterations);
        let drift: f64 =
            warm.scores.iter().zip(&cold.scores).map(|(a, b)| (a - b).abs()).sum();
        assert!(drift < params.epsilon, "warm fixed point drifted by {drift}");

        // Degenerate seeds fall back to the cold start rather than
        // corrupting the iteration.
        for bad in [
            Vec::new(),
            vec![0.0; c.element_count()],
            vec![f64::NAN; c.element_count()],
            vec![-1.0; c.element_count()],
        ] {
            let r = elem_rank_seeded(&c, &params, Some(bad));
            assert_eq!(r.iterations, cold.iterations, "bad seed must cold-start");
            assert!(r
                .scores
                .iter()
                .zip(&cold.scores)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }

        // No seed at all is exactly elem_rank.
        let none = elem_rank_seeded(&c, &params, None);
        assert_eq!(none.iterations, cold.iterations);
    }

    #[test]
    fn seed_is_normalized_before_iterating() {
        let c = collection(&[("a", r#"<r><x>alpha</x><y>beta</y></r>"#)]);
        let params = ElemRankParams { threads: 1, ..Default::default() };
        let cold = elem_rank(&c, &params);
        // A scaled copy of the fixed point is the same direction on the
        // simplex after L1 normalization, so it confirms just as fast.
        let scaled: Vec<f64> = cold.scores.iter().map(|s| s * 42.0).collect();
        let warm = elem_rank_seeded(&c, &params, Some(scaled));
        assert!(warm.converged);
        assert!(warm.iterations <= 2);
        let sum: f64 = warm.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "scores must stay stochastic, sum {sum}");
    }

    #[test]
    fn random_jump_not_biased_toward_large_documents() {
        // Two documents, one 50x larger. Under the final formula the root
        // of the small doc should not be starved: per-document jump mass is
        // equal (1/N_d each).
        let big: String = {
            let mut s = String::from("<r>");
            for i in 0..50 {
                s.push_str(&format!("<e{i}>word</e{i}>"));
            }
            s.push_str("</r>");
            s
        };
        let c = collection(&[("big", &big), ("small", "<r><e>word</e></r>")]);
        let r = elem_rank(&c, &ElemRankParams::default());
        // total mass per document should be roughly equal
        let mass: Vec<f64> = (0..2)
            .map(|d| {
                c.elements()
                    .filter(|(_, e)| e.doc == d)
                    .map(|(id, _)| r.score(id))
                    .sum::<f64>()
            })
            .collect();
        let ratio = mass[0] / mass[1];
        assert!(
            (0.5..2.0).contains(&ratio),
            "per-document mass should be balanced, got ratio {ratio}"
        );
    }
}
