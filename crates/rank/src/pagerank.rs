//! Classic document-granularity PageRank (Brin & Page, WWW 1998), as cited
//! by the paper in Section 3.1. Used (a) as the baseline XRANK generalizes,
//! and (b) by tests validating that ElemRank on flat single-element
//! documents degenerates to exactly this.

use xrank_graph::Collection;

use crate::csr::{IterationParams, RankGraph};
use crate::{resolve_threads, RankResult};

/// Computes PageRank over the *document* graph of `collection`: there is an
/// edge `A → B` for every hyperlink from any element of document `A` to any
/// element of document `B` (self-links are dropped, multi-edges kept —
/// PageRank mass follows link multiplicity). Executes through the shared
/// pull-based CSR kernel ([`RankGraph`]); thread count resolves like
/// ElemRank's auto mode (`XRANK_THREADS`, then available parallelism).
///
/// Returns per-document scores summing to 1.
pub fn page_rank_docs(collection: &Collection, d: f64, epsilon: f64) -> RankResult {
    let n = collection.doc_count();
    if n == 0 {
        return RankResult { scores: Vec::new(), iterations: 0, converged: true, residual: 0.0 };
    }

    // Build the doc-level multigraph.
    let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (_, elem) in collection.elements() {
        for &target in &elem.links_out {
            let to = collection.element(target).doc;
            if to != elem.doc {
                out_edges[elem.doc as usize].push(to);
            }
        }
    }

    let jump = vec![1.0 / n as f64; n];
    let graph = RankGraph::from_edges(n, d, jump, |emit| {
        for (u, targets) in out_edges.iter().enumerate() {
            if targets.is_empty() {
                continue; // dangling document
            }
            let w = d / targets.len() as f64;
            for &t in targets {
                emit(u as u32, t, w);
            }
        }
    });
    graph.power_iterate(&IterationParams {
        epsilon,
        max_iterations: 500,
        threads: resolve_threads(0, n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{elem_rank, ElemRankParams};
    use xrank_graph::CollectionBuilder;
    use xrank_xml::html::parse_html;

    /// Builds N single-element HTML documents with the given link lists.
    fn flat_collection(links: &[&[usize]]) -> Collection {
        let mut b = CollectionBuilder::new();
        for (i, targets) in links.iter().enumerate() {
            let html: String = targets
                .iter()
                .map(|t| format!("<a href=\"doc{t}\">x</a> word{i}"))
                .collect::<Vec<_>>()
                .join(" ");
            let page = parse_html(&format!("<body>{html}</body>"));
            b.add_html_document(&format!("doc{i}"), "html", &page);
        }
        b.build()
    }

    #[test]
    fn hub_receives_highest_rank() {
        // docs 1, 2, 3 all link to doc 0.
        let c = flat_collection(&[&[], &[0], &[0], &[0]]);
        let r = page_rank_docs(&c, 0.85, 1e-10);
        assert!(r.converged);
        assert!((0..4).all(|i| r.scores[0] >= r.scores[i]));
        assert!((r.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// The paper's design goal (Section 1): "when the number of levels in
    /// the XML hierarchy is two... our system behaves just like a HTML
    /// search engine." With single-element documents, ElemRank with
    /// d1+d2+d3 = 0.85 must equal PageRank with d = 0.85.
    #[test]
    fn elemrank_degenerates_to_pagerank_on_flat_documents() {
        let c = flat_collection(&[&[1, 2], &[2], &[0], &[0, 1, 2]]);
        let pr = page_rank_docs(&c, 0.85, 1e-12);
        // Put the entire navigation mass on hyperlinks; containment never
        // applies because documents have a single element.
        let er = elem_rank(
            &c,
            &ElemRankParams {
                d1: 0.85,
                d2: 0.0,
                d3: 0.0,
                epsilon: 1e-12,
                max_iterations: 1000,
                ..Default::default()
            },
        );
        // Element i belongs to doc i here (one element per doc).
        for i in 0..4 {
            assert!(
                (pr.scores[i] - er.scores[i]).abs() < 1e-9,
                "doc {i}: PageRank {} != ElemRank {}",
                pr.scores[i],
                er.scores[i]
            );
        }
    }

    /// Per Section 3.1 the missing-class re-split also makes the default
    /// parameters behave like PageRank on flat docs: with only hyperlinks
    /// available, d1+d2+d3 = 0.85 all flows through them.
    #[test]
    fn default_params_on_flat_docs_match_pagerank_085() {
        let c = flat_collection(&[&[1], &[0], &[0, 1]]);
        let pr = page_rank_docs(&c, 0.85, 1e-12);
        let er = elem_rank(
            &c,
            &ElemRankParams { epsilon: 1e-12, max_iterations: 1000, ..Default::default() },
        );
        for i in 0..3 {
            assert!((pr.scores[i] - er.scores[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph() {
        let c = CollectionBuilder::new().build();
        let r = page_rank_docs(&c, 0.85, 1e-8);
        assert!(r.converged && r.scores.is_empty());
    }
}
