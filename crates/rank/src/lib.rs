//! ElemRank: objective importance of XML elements (paper, Section 3).
//!
//! ElemRank generalizes PageRank to element granularity. The paper develops
//! it as a series of refinements, all of which are implemented here as
//! [`RankVariant`]s so the ablation experiment (E7) can compare them:
//!
//! 1. [`RankVariant::PageRankAdapted`] — map every element to a "page" and
//!    every edge (hyperlink *and* containment) to a hyperlink. Flaw:
//!    containment deserves bidirectional propagation.
//! 2. [`RankVariant::Bidirectional`] — add reverse containment edges
//!    (`E = HE ∪ CE ∪ CE⁻¹`), one damping factor, uniform split over
//!    `N_h + N_c + 1`. Flaw: hyperlinks and containment compete for the
//!    same probability mass.
//! 3. [`RankVariant::Discriminated`] — separate probabilities `d1`
//!    (hyperlinks) and `d2` (containment, both directions). Flaw: forward
//!    and reverse containment still share a split, so a parent's rank is
//!    *divided* among children **and** the parent receives only a fraction
//!    of each child's rank, losing the "a workshop with many important
//!    papers is important" aggregate semantics.
//! 4. [`RankVariant::Final`] — the paper's final formula: `d1` over
//!    hyperlinks (split by `N_h`), `d2` over forward containment (split by
//!    `N_c`), `d3` over reverse containment (**aggregated**, not split),
//!    and a random-jump term `(1 - d1 - d2 - d3) / (N_d · N_de(v))` that
//!    first picks a document, then an element inside it, so reverse
//!    propagation is not biased toward large documents.
//!
//! When an element lacks one of the edge classes, its navigation mass
//! `d1+d2+d3` is split proportionally among the classes it does have
//! (Section 3.1, last paragraph). Elements with no outgoing options at all
//! (single-element documents without links) spill their navigation mass
//! into the random jump — the standard dangling-node correction, which
//! keeps the iteration stochastic and guarantees convergence.
//!
//! Scores are normalized to sum to 1 over all elements; convergence is
//! measured by the L1 norm of successive iterates against the paper's
//! threshold of `0.00002`.
//!
//! [`pagerank::page_rank_docs`] additionally provides classic
//! document-granularity PageRank, used to validate the paper's claim that
//! XRANK "naturally generalizes a hyperlink based HTML search engine":
//! on a collection of single-element documents, ElemRank with
//! `d1+d2+d3 = 0.85` equals PageRank with `d = 0.85` (see tests).
//!
//! All variants (and document PageRank) execute through the shared
//! pull-based CSR kernel in [`csr`]: the collection is flattened once into
//! transposed (in-edge) CSR arrays with per-variant weights precomputed,
//! and the power iteration gathers `next[v] = Σ w·scores[src]` row by row —
//! embarrassingly parallel across rows with no atomics. Thread count is
//! controlled by [`ElemRankParams::threads`] / the `XRANK_THREADS` env var.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
mod elemrank;
pub mod pagerank;

pub use csr::{IterationParams, RankGraph, MAX_THREADS};
pub use elemrank::{
    compute, elem_rank, elem_rank_seeded, resolve_threads, threads_from_env, ElemRankParams,
    RankResult, RankVariant, THREADS_ENV_VAR,
};
