//! Query workload assembly for the experiments.
//!
//! Section 5.4 varies four factors: number of keywords, keyword
//! correlation, number of results (`m`), and keyword selectivity. The
//! first two come from the planted groups ([`crate::plant`]); selectivity
//! workloads pick natural vocabulary words by frequency rank.

use crate::plant::{high_keyword, low_keyword};
use crate::text::word_at_rank;

/// The two correlation regimes of Figures 10 and 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlation {
    /// Keywords co-occur in many elements (Figure 10).
    High,
    /// Keywords frequent but almost never co-occurring (Figure 11).
    Low,
}

/// The keywords of query `group` with `n` keywords under a correlation
/// regime. Groups index the planted keyword groups; `n` must not exceed
/// the planted `group_size`.
pub fn query(correlation: Correlation, group: usize, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match correlation {
            Correlation::High => high_keyword(group, i),
            Correlation::Low => low_keyword(group, i),
        })
        .collect()
}

/// A natural-vocabulary query of `n` words around frequency rank `rank`
/// (consecutive ranks, so all words have comparable selectivity).
pub fn selectivity_query(rank: usize, n: usize) -> Vec<String> {
    (0..n).map(|i| word_at_rank(rank + i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_shapes() {
        assert_eq!(query(Correlation::High, 2, 3), vec!["qhigh2k0", "qhigh2k1", "qhigh2k2"]);
        assert_eq!(query(Correlation::Low, 0, 1), vec!["qlow0k0"]);
    }

    #[test]
    fn selectivity_queries_use_adjacent_ranks() {
        let q = selectivity_query(10, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q[0], word_at_rank(10));
        assert_eq!(q[1], word_at_rank(11));
        assert_ne!(q[0], q[1]);
    }
}
