//! Keyword planting for the correlation-controlled workloads.
//!
//! Figure 10 measures queries whose keywords are *highly correlated*
//! (they co-occur in many elements, so RDIL's probes keep succeeding);
//! Figure 11 measures *low correlation* (each keyword is frequent, but
//! they almost never co-occur, so RDIL burns random probes and DIL's
//! sequential scan wins). Natural Zipf text cannot guarantee either
//! regime, so the generators plant synthetic marker keywords:
//!
//! * High group `g` — keywords `qhigh{g}k{0..}` are injected *together*
//!   (adjacent words) into `high_frequency` text slots.
//! * Low group `g` — keyword `qlow{g}k{i}` is injected alone into
//!   `low_frequency` slots, with all of a group's keywords co-occurring
//!   in exactly `low_cooccurrences` designated slots (so conjunctive
//!   results exist, but are vanishingly rare).
//!
//! A *slot* is one generated text block (a DBLP title, an XMark item
//! description). Injection is a pure function of the slot index, so
//! datasets are reproducible and the workload generator knows exactly
//! which keywords exist.

/// Planting parameters.
#[derive(Debug, Clone, Copy)]
pub struct PlantConfig {
    /// Number of high-correlation and low-correlation groups each.
    pub groups: usize,
    /// Keywords per group (Figures 10/11 sweep 1–4 query keywords).
    pub group_size: usize,
    /// Text slots each high group is planted into (co-occurring).
    pub high_frequency: usize,
    /// Text slots each low keyword is planted into (alone).
    pub low_frequency: usize,
    /// Slots where a low group's keywords all co-occur.
    pub low_cooccurrences: usize,
}

impl Default for PlantConfig {
    fn default() -> Self {
        PlantConfig {
            groups: 4,
            group_size: 4,
            high_frequency: 200,
            low_frequency: 200,
            low_cooccurrences: 2,
        }
    }
}

/// The i-th keyword of high-correlation group `g`.
pub fn high_keyword(group: usize, i: usize) -> String {
    format!("qhigh{group}k{i}")
}

/// The i-th keyword of low-correlation group `g`.
pub fn low_keyword(group: usize, i: usize) -> String {
    format!("qlow{group}k{i}")
}

/// Deterministic slot-indexed injector.
#[derive(Debug, Clone)]
pub struct Planter {
    config: PlantConfig,
    total_slots: usize,
}

impl Planter {
    /// A planter for a dataset with `total_slots` text slots.
    pub fn new(config: PlantConfig, total_slots: usize) -> Self {
        Planter { config, total_slots: total_slots.max(1) }
    }

    /// The planting configuration.
    pub fn config(&self) -> &PlantConfig {
        &self.config
    }

    /// Words to append to text slot `slot` (empty for most slots).
    pub fn inject(&self, slot: usize) -> Vec<String> {
        let c = &self.config;
        let mut out = Vec::new();

        // High groups: all keywords together, spread evenly.
        let high_stride = (self.total_slots / c.high_frequency.max(1)).max(1);
        for g in 0..c.groups {
            if slot % high_stride == (g * 3) % high_stride {
                for i in 0..c.group_size {
                    out.push(high_keyword(g, i));
                }
            }
        }

        // Low co-occurrence slots (checked first so they win the
        // exclusivity rule below).
        let mut low_planted = false;
        for g in 0..c.groups {
            if (0..c.low_cooccurrences).any(|j| slot == self.low_cooccur_slot(g, j)) {
                for i in 0..c.group_size {
                    out.push(low_keyword(g, i));
                }
                low_planted = true;
            }
        }

        // Low keywords alone: each (g, i) gets its own residue class; at
        // most one low keyword per slot so they never co-occur by
        // accident.
        if !low_planted {
            let low_stride = (self.total_slots / c.low_frequency.max(1)).max(1);
            'outer: for g in 0..c.groups {
                for i in 0..c.group_size {
                    let residue = (g * c.group_size + i + 1) % low_stride;
                    if slot % low_stride == residue {
                        out.push(low_keyword(g, i));
                        break 'outer;
                    }
                }
            }
        }
        out
    }

    /// The j-th designated co-occurrence slot of low group `g`.
    fn low_cooccur_slot(&self, g: usize, j: usize) -> usize {
        // Spread deep into the slot space, away from the stride classes.
        (self.total_slots / 2 + g * 31 + j * 97) % self.total_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn census(planter: &Planter) -> (Vec<usize>, Vec<usize>, usize) {
        let c = *planter.config();
        let mut high_counts = vec![0usize; c.groups];
        let mut low_counts = vec![0usize; c.groups * c.group_size];
        let mut low_cooccur = 0usize;
        for slot in 0..planter.total_slots {
            let words = planter.inject(slot);
            for g in 0..c.groups {
                if words.contains(&high_keyword(g, 0)) {
                    high_counts[g] += 1;
                    // high keywords always co-occur
                    for i in 0..c.group_size {
                        assert!(words.contains(&high_keyword(g, i)));
                    }
                }
                let lows: Vec<usize> =
                    (0..c.group_size).filter(|&i| words.contains(&low_keyword(g, i))).collect();
                if lows.len() == c.group_size {
                    low_cooccur += 1;
                }
                for &i in &lows {
                    low_counts[g * c.group_size + i] += 1;
                }
            }
        }
        (high_counts, low_counts, low_cooccur)
    }

    #[test]
    fn high_groups_cooccur_frequently() {
        let planter = Planter::new(PlantConfig::default(), 5000);
        let (high, _, _) = census(&planter);
        for (g, &count) in high.iter().enumerate() {
            assert!(count >= 150, "high group {g} planted only {count} times");
        }
    }

    #[test]
    fn low_keywords_frequent_but_disjoint() {
        let cfg = PlantConfig::default();
        let planter = Planter::new(cfg, 5000);
        let (_, low, cooccur) = census(&planter);
        for (k, &count) in low.iter().enumerate() {
            assert!(count >= 50, "low keyword {k} planted only {count} times");
        }
        // co-occurrence only at the designated slots
        assert!(
            cooccur >= cfg.low_cooccurrences * cfg.groups / 2 && cooccur <= 4 * cfg.groups,
            "unexpected low co-occurrence count {cooccur}"
        );
    }

    #[test]
    fn deterministic() {
        let planter = Planter::new(PlantConfig::default(), 1000);
        for slot in [0usize, 13, 500, 999] {
            assert_eq!(planter.inject(slot), planter.inject(slot));
        }
    }

    #[test]
    fn tiny_slot_spaces_do_not_panic() {
        let planter = Planter::new(PlantConfig::default(), 1);
        let _ = planter.inject(0);
        let planter = Planter::new(
            PlantConfig { groups: 0, ..Default::default() },
            100,
        );
        assert!(planter.inject(5).is_empty());
    }
}
