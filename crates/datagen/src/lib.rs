//! Synthetic datasets and query workloads for the XRANK experiments.
//!
//! The paper evaluates on DBLP (real, 143 MB) and XMark (synthetic,
//! 113 MB, scale 1.0). Neither artifact ships with this reproduction, so
//! this crate generates *shape-faithful* substitutes (see DESIGN.md §2):
//!
//! * [`dblp`] — a DBLP-shaped corpus: one XML document per publication,
//!   depth ≈ 4, skewed author/venue distributions, and citation hyperlinks
//!   across documents following preferential attachment (matching DBLP's
//!   "many inter-document references").
//! * [`xmark`] — an XMark-shaped auction site: a single deep document
//!   (depth ≈ 10) with regions/items/people/auctions and intra-document
//!   IDREFs (auction → item, auction → person).
//! * [`text`] — the Zipf-distributed synthetic vocabulary both generators
//!   draw words from (term frequency skew is what gives inverted lists
//!   their realistic length distribution).
//! * [`plant`] — keyword planting for the Figure 10/11 workloads: *high
//!   correlation* groups co-occur in many elements; *low correlation*
//!   groups are individually frequent but co-occur in almost none — the
//!   paper's two query regimes.
//! * [`workload`] — assembles keyword queries from the planted groups and
//!   by frequency rank.
//!
//! All generation is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dblp;
pub mod plant;
pub mod text;
pub mod workload;
pub mod xmark;

/// A generated dataset: `(uri, xml)` documents ready for
/// `CollectionBuilder::add_xml_str`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Documents in insertion order.
    pub docs: Vec<(String, String)>,
}

impl Dataset {
    /// Total XML bytes across documents.
    pub fn total_bytes(&self) -> usize {
        self.docs.iter().map(|(_, xml)| xml.len()).sum()
    }
}
