//! XMark-shaped auction-site generator.
//!
//! Mirrors the properties the paper relies on (Section 5.1): one deep
//! document ("depth of 10"), no inter-document links but plenty of
//! intra-document IDREFs ("XMark data has many intra-document references"
//! — auctions referencing items and people), and long description texts
//! that give the inverted lists realistic lengths.
//!
//! Structure (element depth in parentheses):
//!
//! ```text
//! site(0) ── regions(1) ── africa…(2) ── item(3) ── description(4) ──
//!            parlist(5) ── listitem(6) ── parlist(7) ── listitem(8) ──
//!            text(9)                                       ← depth 10 path
//!        ├─ categories(1) ── category(2) ── description(3) ── text(4)
//!        ├─ people(1) ── person(2) ── profile(3) ── interest(4)
//!        ├─ open_auctions(1) ── open_auction(2) ── bidder(3) ── …
//!        └─ closed_auctions(1) ── closed_auction(2) ── annotation(3) ── …
//! ```
//!
//! Scale 1.0 here targets a conveniently-benchmarkable corpus (thousands
//! of items), not XMark's original 113 MB; the experiments sweep the scale
//! knob instead.

use crate::plant::{PlantConfig, Planter};
use crate::text::TextModel;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Scale factor: 1.0 ≈ 1200 items / 300 people / 500 auctions.
    pub scale: f64,
    /// Random seed.
    pub seed: u64,
    /// Vocabulary size for description texts.
    pub vocab: usize,
    /// Optional keyword planting (slot = item / auction text index).
    pub plant: Option<PlantConfig>,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig { scale: 1.0, seed: 1, vocab: 5000, plant: None }
    }
}

const REGIONS: &[&str] = &["africa", "asia", "australia", "europe", "namerica", "samerica"];

/// Derived entity counts for a config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmarkCounts {
    /// Total items across regions.
    pub items: usize,
    /// People.
    pub people: usize,
    /// Categories.
    pub categories: usize,
    /// Open auctions.
    pub open_auctions: usize,
    /// Closed auctions.
    pub closed_auctions: usize,
}

impl XmarkConfig {
    /// The entity counts this config generates.
    pub fn counts(&self) -> XmarkCounts {
        let s = self.scale.max(0.01);
        XmarkCounts {
            items: ((1200.0 * s) as usize).max(REGIONS.len()),
            people: ((300.0 * s) as usize).max(4),
            categories: ((60.0 * s) as usize).max(3),
            open_auctions: ((300.0 * s) as usize).max(2),
            closed_auctions: ((200.0 * s) as usize).max(2),
        }
    }
}

/// Generates the single-document dataset.
pub fn generate(config: &XmarkConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let model = TextModel::new(config.vocab.max(10), 1.0);
    let c = config.counts();
    // Text slots: one per item + one per auction annotation.
    let total_slots = c.items + c.open_auctions + c.closed_auctions;
    let planter = config.plant.map(|p| Planter::new(p, total_slots));
    let mut slot = 0usize;

    let mut xml = String::with_capacity(total_slots * 400);
    xml.push_str("<site>");

    // -- regions / items ------------------------------------------------
    xml.push_str("<regions>");
    let mut item = 0usize;
    for (r, region) in REGIONS.iter().enumerate() {
        let _ = write!(xml, "<{region}>");
        let per_region = c.items / REGIONS.len()
            + usize::from(r < c.items % REGIONS.len());
        for _ in 0..per_region {
            write_item(&mut xml, item, &model, &planter, &mut slot, &mut rng);
            item += 1;
        }
        let _ = write!(xml, "</{region}>");
    }
    xml.push_str("</regions>");

    // -- categories -------------------------------------------------------
    xml.push_str("<categories>");
    for i in 0..c.categories {
        let mut name = String::new();
        model.sentence(&mut rng, 2, &mut name);
        let mut desc = String::new();
        let desc_len = 10 + rng.random_range(0..10usize);
        model.sentence(&mut rng, desc_len, &mut desc);
        let _ = write!(
            xml,
            r#"<category id="category{i}"><name>{name}</name><description><text>{desc}</text></description></category>"#
        );
    }
    xml.push_str("</categories>");

    // -- people -----------------------------------------------------------
    xml.push_str("<people>");
    for i in 0..c.people {
        let first = crate::text::word_at_rank(1000 + 2 * i);
        let last = crate::text::word_at_rank(1001 + 2 * i);
        let n_interests = rng.random_range(0..4);
        let _ = write!(
            xml,
            r#"<person id="person{i}"><name>{first} {last}</name><emailaddress>{first}.{last}@auction.example</emailaddress><profile income="{}">"#,
            20_000 + rng.random_range(0..80_000)
        );
        for _ in 0..n_interests {
            let _ = write!(
                xml,
                r#"<interest category="category{}"/>"#,
                rng.random_range(0..c.categories)
            );
        }
        xml.push_str("</profile></person>");
    }
    xml.push_str("</people>");

    // -- open auctions -----------------------------------------------------
    xml.push_str("<open_auctions>");
    for i in 0..c.open_auctions {
        let item_ref = rng.random_range(0..c.items);
        let seller = rng.random_range(0..c.people);
        let n_bidders = rng.random_range(0..5);
        let _ = write!(
            xml,
            r#"<open_auction id="open_auction{i}"><initial>{}</initial>"#,
            1 + rng.random_range(0..500)
        );
        for b in 0..n_bidders {
            let _ = write!(
                xml,
                r#"<bidder><date>2003-0{}-1{}</date><personref person="person{}"/><increase>{}</increase></bidder>"#,
                1 + b % 9,
                b % 9,
                rng.random_range(0..c.people),
                1 + rng.random_range(0..50)
            );
        }
        let mut anno = String::new();
        let anno_len = 15 + rng.random_range(0..25usize);
        model.sentence(&mut rng, anno_len, &mut anno);
        inject(&planter, &mut slot, &mut anno);
        let _ = write!(
            xml,
            r#"<current>{}</current><itemref item="item{item_ref}"/><seller person="person{seller}"/><annotation><description><text>{anno}</text></description></annotation></open_auction>"#,
            1 + rng.random_range(0..1000)
        );
    }
    xml.push_str("</open_auctions>");

    // -- closed auctions ----------------------------------------------------
    xml.push_str("<closed_auctions>");
    for i in 0..c.closed_auctions {
        let item_ref = rng.random_range(0..c.items);
        let seller = rng.random_range(0..c.people);
        let buyer = rng.random_range(0..c.people);
        let mut anno = String::new();
        let anno_len = 10 + rng.random_range(0..20usize);
        model.sentence(&mut rng, anno_len, &mut anno);
        inject(&planter, &mut slot, &mut anno);
        let _ = write!(
            xml,
            r#"<closed_auction id="closed_auction{i}"><seller person="person{seller}"/><buyer person="person{buyer}"/><itemref item="item{item_ref}"/><price>{}</price><date>2003-0{}-02</date><annotation><description><text>{anno}</text></description></annotation></closed_auction>"#,
            10 + rng.random_range(0..2000),
            1 + i % 9
        );
    }
    xml.push_str("</closed_auctions>");

    xml.push_str("</site>");
    Dataset { docs: vec![("xmark/site".to_string(), xml)] }
}

fn inject(planter: &Option<Planter>, slot: &mut usize, text: &mut String) {
    if let Some(p) = planter {
        for word in p.inject(*slot) {
            text.push(' ');
            text.push_str(&word);
        }
    }
    *slot += 1;
}

fn write_item(
    xml: &mut String,
    i: usize,
    model: &TextModel,
    planter: &Option<Planter>,
    slot: &mut usize,
    rng: &mut StdRng,
) {
    let mut name = String::new();
    let name_len = 1 + rng.random_range(0..3usize);
    model.sentence(rng, name_len, &mut name);
    let mut para1 = String::new();
    let para1_len = 20 + rng.random_range(0..40usize);
    model.sentence(rng, para1_len, &mut para1);
    inject(planter, slot, &mut para1);
    let mut para2 = String::new();
    let para2_len = 10 + rng.random_range(0..20usize);
    model.sentence(rng, para2_len, &mut para2);
    let quantity = 1 + rng.random_range(0..5);
    // The nested parlist/listitem chain is what gives XMark its depth-10
    // text paths.
    let _ = write!(
        xml,
        r#"<item id="item{i}"><location>here</location><quantity>{quantity}</quantity><name>{name}</name><payment>cash</payment><description><parlist><listitem><parlist><listitem><text>{para1}</text></listitem></parlist></listitem><listitem><text>{para2}</text></listitem></parlist></description><shipping>post</shipping></item>"#
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_one_parsable_document() {
        let ds = generate(&XmarkConfig { scale: 0.05, ..Default::default() });
        assert_eq!(ds.docs.len(), 1);
        let doc = xrank_xml::parse(&ds.docs[0].1).unwrap();
        assert_eq!(doc.node(doc.root()).name(), Some("site"));
    }

    #[test]
    fn depth_reaches_nine_plus() {
        let ds = generate(&XmarkConfig { scale: 0.05, ..Default::default() });
        let doc = xrank_xml::parse(&ds.docs[0].1).unwrap();
        fn depth(doc: &xrank_xml::Document, id: xrank_xml::NodeId) -> usize {
            doc.children(id)
                .iter()
                .filter(|&&c| doc.node(c).is_element())
                .map(|&c| 1 + depth(doc, c))
                .max()
                .unwrap_or(0)
        }
        assert!(depth(&doc, doc.root()) >= 9, "XMark-like data must be deep");
    }

    #[test]
    fn idrefs_resolve_within_document() {
        let ds = generate(&XmarkConfig { scale: 0.05, ..Default::default() });
        let xml = &ds.docs[0].1;
        // Every itemref/personref target id must be defined.
        let doc = xrank_xml::parse(xml).unwrap();
        let mut defined = std::collections::HashSet::new();
        let mut referenced = Vec::new();
        for id in doc.descendants() {
            let n = doc.node(id);
            if let Some(v) = n.attr("id") {
                defined.insert(v.to_string());
            }
            for attr in ["item", "person", "category"] {
                if let Some(v) = n.attr(attr) {
                    referenced.push(v.to_string());
                }
            }
        }
        assert!(!referenced.is_empty());
        for r in referenced {
            assert!(defined.contains(&r), "dangling reference {r}");
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = generate(&XmarkConfig { scale: 0.02, ..Default::default() });
        let large = generate(&XmarkConfig { scale: 0.08, ..Default::default() });
        assert!(large.total_bytes() > 2 * small.total_bytes());
    }

    #[test]
    fn deterministic() {
        let a = generate(&XmarkConfig { scale: 0.02, ..Default::default() });
        let b = generate(&XmarkConfig { scale: 0.02, ..Default::default() });
        assert_eq!(a.docs, b.docs);
    }

    #[test]
    fn planted_keywords_present() {
        let plant = PlantConfig {
            groups: 1,
            group_size: 2,
            high_frequency: 20,
            low_frequency: 20,
            low_cooccurrences: 1,
        };
        let ds = generate(&XmarkConfig { scale: 0.05, plant: Some(plant), ..Default::default() });
        let xml = &ds.docs[0].1;
        assert!(xml.contains(&crate::plant::high_keyword(0, 0)));
        assert!(xml.contains(&crate::plant::low_keyword(0, 0)));
    }
}
