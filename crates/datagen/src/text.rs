//! Zipf-distributed synthetic vocabulary.
//!
//! Real text is heavily skewed: the r-th most frequent word appears with
//! probability ∝ 1/r^s. The experiments depend on that skew — it is what
//! produces a realistic mix of long and short inverted lists — so the
//! generators sample words from this model. Words are pronounceable
//! syllable strings ("tavoki", "rensolu", …), deterministic per rank, so
//! generated XML is human-readable in the examples.

use rand::rngs::StdRng;
use rand::RngExt;

/// Zipfian word sampler over a fixed-size vocabulary.
#[derive(Debug, Clone)]
pub struct TextModel {
    vocab: Vec<String>,
    /// Cumulative probability table for inverse-transform sampling.
    cumulative: Vec<f64>,
}

const SYLLABLES: &[&str] = &[
    "ta", "re", "mi", "so", "lu", "ven", "kor", "pa", "den", "fi", "gal", "hu", "jin", "ket",
    "lor", "mas", "nor", "pel", "qui", "ras", "sil", "tun", "vor", "wex", "yol", "zam",
];

/// The deterministic word at frequency rank `rank` (0 = most frequent).
///
/// Injective: the syllable table is a prefix-free code, and the base-26
/// digit expansion of `rank + 26` (offset forces at least two syllables)
/// is canonical, so distinct ranks yield distinct words.
pub fn word_at_rank(rank: usize) -> String {
    let base = SYLLABLES.len();
    let mut n = rank + base;
    let mut word = String::new();
    while n > 0 {
        word.push_str(SYLLABLES[n % base]);
        n /= base;
    }
    word
}

impl TextModel {
    /// A model over the `vocab_size` most frequent words with Zipf
    /// exponent `s` (classic natural-language value: 1.0).
    pub fn new(vocab_size: usize, s: f64) -> Self {
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        let vocab: Vec<String> = (0..vocab_size).map(word_at_rank).collect();
        let mut cumulative = Vec::with_capacity(vocab_size);
        let mut total = 0.0;
        for r in 1..=vocab_size {
            total += 1.0 / (r as f64).powf(s);
            cumulative.push(total);
        }
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        TextModel { vocab, cumulative }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The word at a frequency rank (0-based).
    pub fn word(&self, rank: usize) -> &str {
        &self.vocab[rank]
    }

    /// Samples a frequency rank (0-based, Zipf-distributed).
    pub fn sample_rank(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.vocab.len() - 1)
    }

    /// Samples one word.
    pub fn sample<'a>(&'a self, rng: &mut StdRng) -> &'a str {
        let rank = self.sample_rank(rng);
        &self.vocab[rank]
    }

    /// Samples a sentence of `len` words into `out` (space separated).
    pub fn sentence(&self, rng: &mut StdRng, len: usize, out: &mut String) {
        for i in 0..len {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.sample(rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_distinct_and_stable() {
        let a: Vec<String> = (0..500).map(word_at_rank).collect();
        let b: Vec<String> = (0..500).map(word_at_rank).collect();
        assert_eq!(a, b, "deterministic");
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "no collisions in the first 500 ranks");
    }

    #[test]
    fn sampling_is_zipf_skewed() {
        let model = TextModel::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            let u: f64 = rng.random_range(0.0..1.0);
            let idx = model.cumulative.partition_point(|&c| c < u);
            counts[idx.min(999)] += 1;
        }
        // rank 0 should dominate rank 99 by roughly 100x (Zipf s=1)
        assert!(counts[0] > counts[99] * 20, "rank0={} rank99={}", counts[0], counts[99]);
        // and everything should have a chance
        assert!(counts[0] < 200_000 / 4, "head not overwhelming");
    }

    #[test]
    fn sentence_has_requested_length() {
        let model = TextModel::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = String::new();
        model.sentence(&mut rng, 12, &mut s);
        assert_eq!(s.split_whitespace().count(), 12);
    }

    #[test]
    fn deterministic_given_seed() {
        let model = TextModel::new(100, 1.0);
        let mut s1 = String::new();
        let mut s2 = String::new();
        model.sentence(&mut StdRng::seed_from_u64(9), 20, &mut s1);
        model.sentence(&mut StdRng::seed_from_u64(9), 20, &mut s2);
        assert_eq!(s1, s2);
    }
}
