//! DBLP-shaped corpus generator.
//!
//! Properties mirrored from the real DBLP dataset the paper uses
//! (Section 5.1): shallow documents ("depth of about 4"), many
//! inter-document references ("in the form of bibliographic citations"),
//! skewed author productivity (a few prolific authors — the paper's
//! 'gray' anecdote needs a Jim-Gray-like author whose papers are heavily
//! cited), and skewed citation in-degree via preferential attachment.
//!
//! Each publication is its own XML document:
//!
//! ```xml
//! <article key="pub42" year="1997">
//!   <author>kor velan</author><author>resil tunor</author>
//!   <title>tavoki rensolu ...</title>
//!   <venue>journal of kor studies</venue>
//!   <cite href="dblp/pub7"/><cite href="dblp/pub31"/>
//! </article>
//! ```
//!
//! Citations point only to earlier publications (`href` is resolved by the
//! graph builder's XLink convention), giving an acyclic citation graph
//! like real bibliographies.

use crate::plant::{PlantConfig, Planter};
use crate::text::TextModel;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of publications (= documents).
    pub publications: usize,
    /// Author pool size (0 = derived as `publications / 4`, min 10).
    pub authors: usize,
    /// Random seed.
    pub seed: u64,
    /// Vocabulary size for titles.
    pub vocab: usize,
    /// Optional keyword planting (slot = publication index).
    pub plant: Option<PlantConfig>,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig { publications: 2000, authors: 0, seed: 1, vocab: 5000, plant: None }
    }
}

/// URI of publication `i` (what `<cite href>` points at).
pub fn pub_uri(i: usize) -> String {
    format!("dblp/pub{i}")
}

/// Generates the corpus.
pub fn generate(config: &DblpConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let model = TextModel::new(config.vocab.max(10), 1.0);
    let n = config.publications;
    let author_pool = if config.authors > 0 { config.authors } else { (n / 4).max(10) };

    // Author names: two-word pseudonyms, selection Zipf-skewed so a few
    // authors are prolific.
    let authors: Vec<String> = (0..author_pool)
        .map(|i| format!("{} {}", crate::text::word_at_rank(2 * i + 11), crate::text::word_at_rank(2 * i + 12)))
        .collect();
    let author_model = TextModel::new(author_pool, 1.0);

    let venues: Vec<String> = (0..25)
        .map(|i| format!("journal of {} studies", crate::text::word_at_rank(i + 301)))
        .collect();

    let planter = config.plant.map(|p| Planter::new(p, n));

    // Preferential attachment ball list: paper i appears once on creation
    // plus once per citation received.
    let mut balls: Vec<usize> = Vec::with_capacity(n * 4);
    let mut docs = Vec::with_capacity(n);

    for i in 0..n {
        let mut xml = String::with_capacity(600);
        let year = 1985 + (i * 19) % 19 + rng.random_range(0..2usize);
        let kind = if i % 3 == 0 { "inproceedings" } else { "article" };
        let _ = write!(xml, r#"<{kind} key="pub{i}" year="{year}">"#);

        let n_authors = 1 + rng.random_range(0..3);
        for _ in 0..n_authors {
            // Zipf pick over the author pool: a few authors are prolific.
            let rank = author_model.sample_rank(&mut rng);
            let _ = write!(xml, "<author>{}</author>", authors[rank]);
        }

        let mut title = String::new();
        let title_len = 6 + rng.random_range(0..6usize);
        model.sentence(&mut rng, title_len, &mut title);
        if let Some(p) = &planter {
            for word in p.inject(i) {
                title.push(' ');
                title.push_str(&word);
            }
        }
        let _ = write!(xml, "<title>{title}</title>");
        let _ = write!(xml, "<venue>{}</venue>", venues[rng.random_range(0..venues.len())]);

        // Citations to earlier papers, preferential attachment.
        if i > 0 {
            let n_cites = rng.random_range(0..12.min(i + 1));
            for _ in 0..n_cites {
                let target = balls[rng.random_range(0..balls.len())];
                let _ = write!(xml, r#"<cite href="{}"/>"#, pub_uri(target));
                balls.push(target);
            }
        }
        let _ = write!(xml, "</{kind}>");

        balls.push(i);
        docs.push((pub_uri(i), xml));
    }
    Dataset { docs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_parses() {
        let ds = generate(&DblpConfig { publications: 50, ..Default::default() });
        assert_eq!(ds.docs.len(), 50);
        for (uri, xml) in &ds.docs {
            let doc = xrank_xml::parse(xml).unwrap_or_else(|e| panic!("{uri}: {e}"));
            let root = doc.node(doc.root());
            assert!(matches!(root.name(), Some("article" | "inproceedings")));
        }
    }

    #[test]
    fn citations_point_backwards() {
        let ds = generate(&DblpConfig { publications: 80, ..Default::default() });
        for (i, (_, xml)) in ds.docs.iter().enumerate() {
            let doc = xrank_xml::parse(xml).unwrap();
            for id in doc.descendants() {
                let node = doc.node(id);
                if node.name() == Some("cite") {
                    let href = node.attr("href").unwrap();
                    let target: usize =
                        href.strip_prefix("dblp/pub").unwrap().parse().unwrap();
                    assert!(target < i, "pub{i} cites forward to pub{target}");
                }
            }
        }
    }

    #[test]
    fn citation_indegree_is_skewed() {
        let ds = generate(&DblpConfig { publications: 500, ..Default::default() });
        let mut indeg = vec![0usize; 500];
        for (_, xml) in &ds.docs {
            let doc = xrank_xml::parse(xml).unwrap();
            for id in doc.descendants() {
                if doc.node(id).name() == Some("cite") {
                    let t: usize = doc
                        .node(id)
                        .attr("href")
                        .unwrap()
                        .strip_prefix("dblp/pub")
                        .unwrap()
                        .parse()
                        .unwrap();
                    indeg[t] += 1;
                }
            }
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = indeg[..10].iter().sum();
        let total: usize = indeg.iter().sum();
        assert!(total > 0);
        assert!(
            top10 * 5 > total,
            "preferential attachment should concentrate citations: top10={top10} total={total}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&DblpConfig { publications: 30, ..Default::default() });
        let b = generate(&DblpConfig { publications: 30, ..Default::default() });
        assert_eq!(a.docs, b.docs);
        let c = generate(&DblpConfig { publications: 30, seed: 2, ..Default::default() });
        assert_ne!(a.docs, c.docs);
    }

    #[test]
    fn planted_keywords_present() {
        let plant = PlantConfig { groups: 1, group_size: 2, high_frequency: 10, low_frequency: 10, low_cooccurrences: 1 };
        let ds = generate(&DblpConfig {
            publications: 100,
            plant: Some(plant),
            ..Default::default()
        });
        let all: String = ds.docs.iter().map(|(_, x)| x.as_str()).collect();
        assert!(all.contains(&crate::plant::high_keyword(0, 0)));
        assert!(all.contains(&crate::plant::low_keyword(0, 1)));
    }

    #[test]
    fn depth_is_shallow() {
        let ds = generate(&DblpConfig { publications: 10, ..Default::default() });
        for (_, xml) in &ds.docs {
            let doc = xrank_xml::parse(xml).unwrap();
            // element tree depth: root(article) -> field -> text ⇒ ≤ 2 levels
            fn depth(doc: &xrank_xml::Document, id: xrank_xml::NodeId) -> usize {
                doc.children(id)
                    .iter()
                    .filter(|&&c| doc.node(c).is_element())
                    .map(|&c| 1 + depth(doc, c))
                    .max()
                    .unwrap_or(0)
            }
            assert!(depth(&doc, doc.root()) <= 2);
        }
    }
}
