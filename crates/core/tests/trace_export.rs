//! Flight recorder + Chrome trace export, end to end: the Section 4.2.2
//! worked example runs through an updatable pipeline (queries, commits,
//! a delete, a compaction), the recorder retains every op on one
//! timeline, and the exported trace-event JSON is structurally valid and
//! — under normalized rendering — byte-for-byte deterministic.

use std::time::Duration;
use xrank_core::{
    render_chrome_trace_normalized, validate_chrome_trace, EngineConfig, ObsConfig, OpKind,
    UpdatableXRank,
};

/// The paper's Figure 1 / Section 4.2.2 workshop-proceedings example.
const WORKSHOP: &str = r#"<workshop>
  <wtitle>XML and IR a SIGIR Workshop</wtitle>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza-Yates</author>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
      </body>
    </paper>
    <paper id="2"><title>Querying XML in Xyleme</title></paper>
  </proceedings>
</workshop>"#;

fn quiet_thresholds() -> ObsConfig {
    // Slowness depends on wall time; push the thresholds out of reach so
    // a scheduling hiccup cannot flip the `slow` flag in a golden dump.
    ObsConfig {
        slow_query_threshold: Duration::from_secs(3600),
        slow_op_threshold: Duration::from_secs(3600),
        ..Default::default()
    }
}

/// Runs the worked example through a fresh ephemeral pipeline and
/// returns the normalized trace dump: identical operation sequences must
/// produce identical bytes.
fn run_scenario() -> String {
    let config = EngineConfig { obs: quiet_thresholds(), ..Default::default() };
    let e = UpdatableXRank::new(config);
    e.add_xml("workshop", WORKSHOP).unwrap();
    e.commit().unwrap();
    e.search("xql language", 10).unwrap();
    e.add_xml(
        "note",
        "<doc><title>XQL notes</title><body>the xql query language again</body></doc>",
    )
    .unwrap();
    e.commit().unwrap();
    e.search("xql language", 10).unwrap();
    e.delete("note").unwrap();
    e.compact().unwrap();
    e.search("xql language", 10).unwrap();
    render_chrome_trace_normalized(&e.recorder().records())
}

#[test]
fn normalized_worked_example_dump_is_byte_deterministic() {
    let a = run_scenario();
    let b = run_scenario();
    assert_eq!(a, b, "two identical op sequences rendered different traces");
}

#[test]
fn worked_example_dump_validates_with_every_op_kind_on_the_timeline() {
    let json = run_scenario();
    let check = validate_chrome_trace(&json).expect("dump must validate");
    for cat in ["query", "commit", "compaction", "manifest_swap", "stage"] {
        assert!(check.has_cat(cat), "dump is missing cat {cat:?}:\n{json}");
    }
    // Stable op names: the §4.2.2 query and the segment lifecycle.
    assert!(json.contains("query[hdil] xql language"), "query op label drifted");
    assert!(json.contains("commit seg-1 docs=1 seq=1"), "commit op label drifted");
    assert!(json.contains("delete note"), "delete op label drifted");
    assert!(json.contains("compaction folded=2"), "compaction op label drifted");
}

#[test]
fn recorder_orders_queries_and_background_ops_on_one_timeline() {
    let config = EngineConfig { obs: quiet_thresholds(), ..Default::default() };
    let e = UpdatableXRank::new(config);
    e.add_xml("workshop", WORKSHOP).unwrap();
    e.commit().unwrap();
    e.search("xql language", 10).unwrap();
    e.compact().unwrap();

    let records = e.recorder().records();
    let commit_at = records
        .iter()
        .find(|r| r.kind == OpKind::Commit)
        .expect("commit recorded")
        .start_ns;
    let query_at = records
        .iter()
        .find(|r| r.kind == OpKind::Query)
        .expect("query recorded")
        .start_ns;
    let fold_at = records
        .iter()
        .find(|r| r.kind == OpKind::Compaction)
        .expect("compaction recorded")
        .start_ns;
    assert!(
        commit_at <= query_at && query_at <= fold_at,
        "ops out of order on the shared epoch: commit {commit_at} query {query_at} fold {fold_at}"
    );
    // They all ran on this test thread, so they share one track.
    let threads: std::collections::HashSet<&str> =
        records.iter().map(|r| r.thread.as_str()).collect();
    assert_eq!(threads.len(), 1, "single-threaded scenario grew extra tracks: {threads:?}");
}

#[test]
fn slow_op_log_captures_commits_and_compactions() {
    let config = EngineConfig {
        obs: ObsConfig {
            slow_op_threshold: Duration::ZERO,
            slow_query_threshold: Duration::from_secs(3600),
            ..Default::default()
        },
        ..Default::default()
    };
    let e = UpdatableXRank::new(config);
    e.add_xml("workshop", WORKSHOP).unwrap();
    e.commit().unwrap();
    e.add_xml("doc2", "<doc><body>second body</body></doc>").unwrap();
    e.commit().unwrap();
    e.compact().unwrap();

    let ops = e.slow_ops();
    let kinds: Vec<&str> = ops.iter().map(|o| o.kind).collect();
    assert_eq!(kinds, ["commit", "commit", "compaction"], "slow-op log kinds: {kinds:?}");
    assert!(
        ops.iter().all(|o| !o.trace.spans.is_empty()),
        "captured slow ops must carry their stage timeline"
    );
    let rendered = e.render_metrics();
    assert!(
        rendered.contains("xrank_update_slow_ops_total 3"),
        "slow-op counter missing:\n{rendered}"
    );
}

#[test]
fn per_segment_gauges_retire_when_compaction_drops_segments() {
    let e = UpdatableXRank::new(EngineConfig::default());
    e.add_xml("a", "<doc><body>alpha text</body></doc>").unwrap();
    e.commit().unwrap();
    e.add_xml("b", "<doc><body>beta text</body></doc>").unwrap();
    e.commit().unwrap();

    let before = e.render_metrics();
    assert!(before.contains("xrank_update_segment_docs{segment=\"1\"}"), "{before}");
    assert!(before.contains("xrank_update_segment_docs{segment=\"2\"}"), "{before}");

    e.compact().unwrap();
    let after = e.render_metrics();
    assert!(
        !after.contains("segment=\"1\"") && !after.contains("segment=\"2\""),
        "stale per-segment series survived compaction:\n{after}"
    );
    assert!(
        after.contains("xrank_update_segment_docs{segment=\"3\"}"),
        "folded segment's series missing:\n{after}"
    );
}

#[test]
fn disabled_recorder_keeps_queries_untraced() {
    let mut config = EngineConfig::default();
    config.obs.recorder.enabled = false;
    let e = UpdatableXRank::new(config);
    e.add_xml("workshop", WORKSHOP).unwrap();
    e.commit().unwrap();
    e.search("xql language", 10).unwrap();
    assert!(e.recorder().records().is_empty(), "disabled recorder retained records");
    let check = validate_chrome_trace(&e.dump_trace_json()).expect("empty dump still validates");
    assert!(check.tracks.is_empty(), "empty recorder produced tracks: {:?}", check.tracks);
}
