//! Overload-protection suite: retry with backoff, circuit breaking,
//! prompt executor shutdown, graceful degradation through the engine
//! facade, and the engine-level in-flight backstop.
//!
//! Everything runs over a [`FaultStore`] (deterministic fault injection)
//! or a plain in-memory engine — no timing-based flakiness beyond the
//! breaker cooldown, which uses generous margins.

use std::sync::Arc;
use std::time::Duration;
use xrank_core::{
    EngineBuilder, EngineConfig, QueryExecutor, QueryRequest, Strategy, XRankEngine,
};
use xrank_query::{QueryError, QueryOptions};
use xrank_storage::{
    BreakerConfig, FaultAt, FaultKind, FaultPolicy, FaultRule, FaultStore, MemStore, PageId,
    PageStore, RetryPolicy, SegmentId, StorageError,
};

fn repeated(word: &str, n: usize) -> String {
    vec![word; n].join(" ")
}

/// Two high-volume single-term topics (same corpus shape as the
/// fault-injection suite), built over a seeded fault store with the given
/// retry/breaker policy. `with_rdil` also builds the standalone RDIL
/// index — which lives in its *own* storage segments, giving the breaker
/// tests an undamaged index family to keep serving from.
fn fault_engine_with(policy: FaultPolicy, with_rdil: bool) -> XRankEngine<FaultStore<MemStore>> {
    let mut b = EngineBuilder::with_config(EngineConfig {
        fault_policy: policy,
        with_rdil,
        ..Default::default()
    });
    for d in 0..40 {
        b.add_xml(
            &format!("a{d}"),
            &format!("<doc><t>{}</t></doc>", repeated("alphaword", 100)),
        )
        .unwrap();
        b.add_xml(
            &format!("b{d}"),
            &format!("<doc><t>{}</t></doc>", repeated("betaword", 100)),
        )
        .unwrap();
    }
    b.build_with_store(FaultStore::with_seed(MemStore::new(), 17))
        .unwrap()
}

fn hits_of(r: &xrank_core::SearchResults) -> Vec<(xrank_dewey::DeweyId, u64)> {
    r.hits.iter().map(|h| (h.dewey.clone(), h.score.to_bits())).collect()
}

fn all_pages<S: PageStore>(store: &S) -> Vec<PageId> {
    let mut v = Vec::new();
    for s in 0..store.segment_count() {
        let seg = SegmentId(s);
        for p in 0..store.page_count(seg) {
            v.push(PageId::new(seg, p));
        }
    }
    v
}

/// The segment backing the HDIL full (DIL) lists, found by per-page
/// probing on a breaker-free engine (probing on the engine under test
/// would pollute its breaker failure counts). Index layout is
/// deterministic, so the segment id carries over to any engine built from
/// the same corpus and config.
fn dil_list_segment() -> SegmentId {
    let e = fault_engine_with(FaultPolicy::default(), true);
    let opts = QueryOptions::default();
    let store = e.pool().store();
    all_pages(store)
        .into_iter()
        .find(|&page| {
            store.inject(FaultRule::new(FaultKind::ReadError, FaultAt::Page(page)));
            let dead = e.search_with("alphaword", Strategy::Dil, &opts).is_err();
            store.clear_faults();
            dead
        })
        .expect("some page backs the DIL lists")
        .segment
}

/// With retry enabled through [`EngineConfig::fault_policy`], transient
/// faults below the retry limit are invisible to the caller: the query
/// succeeds with baseline-identical results, and the retries show up in
/// the published pool metrics.
#[test]
fn transient_faults_below_retry_limit_are_caller_invisible() {
    let policy = FaultPolicy {
        retry: RetryPolicy {
            max_retries: 3,
            backoff_base: Duration::from_micros(50),
            backoff_max: Duration::from_millis(1),
        },
        breaker: BreakerConfig::disabled(),
    };
    let e = fault_engine_with(policy, false);
    let opts = QueryOptions::default();
    let baseline = e.search_with("alphaword", Strategy::Dil, &opts).unwrap();

    // The first physical read faults twice, then succeeds on the third
    // attempt — still within max_retries = 3.
    let store = e.pool().store();
    store.inject(FaultRule::new(FaultKind::ReadError, FaultAt::Always).times(2));
    let retried = e
        .search_with("alphaword", Strategy::Dil, &opts)
        .expect("transient faults below the retry limit must be invisible");
    assert_eq!(hits_of(&retried), hits_of(&baseline));
    assert_eq!(store.injected_count(), 2, "both faults were exercised");

    let snap = e.metrics_snapshot();
    assert_eq!(snap.gauge("xrank_pool_read_retries"), 2);
    assert_eq!(snap.gauge("xrank_pool_retry_successes"), 1);
}

/// With retry disabled (the default), a single transient fault still
/// surfaces — PR 3's fault-injection semantics are opt-out intact.
#[test]
fn default_policy_still_surfaces_single_faults() {
    let e = fault_engine_with(FaultPolicy::default(), false);
    let opts = QueryOptions::default();
    let store = e.pool().store();
    store.inject(FaultRule::new(FaultKind::ReadError, FaultAt::Always).times(1));
    let err = e.search_with("alphaword", Strategy::Dil, &opts).unwrap_err();
    assert!(matches!(err, QueryError::Storage(StorageError::Io { .. })), "got {err:?}");
}

/// A persistently failing segment trips its circuit breaker: subsequent
/// queries touching it fail fast with the typed [`StorageError::CircuitOpen`]
/// without reaching the store, queries over the other index family's
/// segments keep serving, and after the cooldown a half-open probe
/// restores service. (Segments map to index components — all DIL lists
/// share one — so segment isolation is demonstrated across strategies.)
#[test]
fn tripped_breaker_fails_fast_and_recovers_after_cooldown() {
    let policy = FaultPolicy {
        retry: RetryPolicy::disabled(),
        breaker: BreakerConfig { threshold: 2, cooldown: Duration::from_millis(40) },
    };
    let e = fault_engine_with(policy, true);
    let opts = QueryOptions::default();
    let base_dil = e.search_with("alphaword", Strategy::Dil, &opts).unwrap();
    let base_rdil = e.search_with("alphaword", Strategy::Rdil, &opts).unwrap();

    // Damage the segment holding the DIL lists, persistently.
    let seg = dil_list_segment();
    let store = e.pool().store();
    store.inject(FaultRule::new(FaultKind::ReadError, FaultAt::Segment(seg)));

    // Two consecutive failures on the segment reach the threshold.
    assert!(e.search_with("alphaword", Strategy::Dil, &opts).is_err());
    assert!(e.search_with("alphaword", Strategy::Dil, &opts).is_err());
    let touched_before = store.injected_count();

    // Now the breaker is open: fail fast, typed, without touching the
    // store at all.
    let err = e.search_with("alphaword", Strategy::Dil, &opts).unwrap_err();
    assert!(
        matches!(err, QueryError::Storage(StorageError::CircuitOpen { segment }) if segment == seg),
        "got {err:?}"
    );
    assert_eq!(store.injected_count(), touched_before, "fast-fail must not reach the store");

    // Queries over the undamaged RDIL segments keep serving through it
    // all, on the same shared engine.
    let rdil = e.search_with("alphaword", Strategy::Rdil, &opts).unwrap();
    assert_eq!(hits_of(&rdil), hits_of(&base_rdil));

    // Heal the segment, wait out the cooldown: the half-open probe
    // succeeds and service is restored.
    store.clear_faults();
    std::thread::sleep(Duration::from_millis(60));
    let healed = e.search_with("alphaword", Strategy::Dil, &opts).unwrap();
    assert_eq!(hits_of(&healed), hits_of(&base_dil));

    let snap = e.metrics_snapshot();
    assert!(snap.gauge("xrank_pool_breaker_trips") >= 1);
    assert!(snap.gauge("xrank_pool_breaker_fast_fails") >= 1);
    assert!(snap.gauge("xrank_pool_breaker_recoveries") >= 1);
}

/// Satellite: `QueryExecutor::shutdown` must not hang on a long-running
/// query. The query is made deliberately slow via fault-injected retries
/// (each faulted page read sleeps through a backoff), and shutdown's
/// shared cancel flag stops it at the next loop boundary.
#[test]
fn shutdown_interrupts_a_slow_fault_injected_query() {
    let policy = FaultPolicy {
        // Every other read faults once and succeeds on retry after a
        // 50ms backoff: with the slowterm list spanning dozens of pages,
        // the query runs for seconds unless something stops it.
        retry: RetryPolicy {
            max_retries: 1,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(50),
        },
        breaker: BreakerConfig::disabled(),
    };
    let mut b = EngineBuilder::with_config(EngineConfig {
        fault_policy: policy,
        ..Default::default()
    });
    for d in 0..60 {
        b.add_xml(
            &format!("s{d}"),
            &format!("<doc><t>{}</t></doc>", repeated("slowterm", 800)),
        )
        .unwrap();
    }
    let e = Arc::new(
        b.build_with_store(FaultStore::with_seed(MemStore::new(), 23))
            .unwrap(),
    );
    e.pool()
        .store()
        .inject(FaultRule::new(FaultKind::ReadError, FaultAt::EveryNth(2)));
    // The serving path (`query`) does not clear the cache; start cold.
    e.pool().clear_cache();

    let exec = QueryExecutor::new(Arc::clone(&e), 1, 4);
    let reply = exec
        .submit(QueryRequest::new("slowterm", Strategy::Dil))
        .unwrap();
    // Let the worker get into the evaluation (a couple of backoffs deep).
    std::thread::sleep(Duration::from_millis(120));
    exec.shutdown();
    // The shared cancel flag stops the query at its next loop boundary —
    // shutdown cannot hang for the query's multi-second natural runtime,
    // and the submitter gets a typed reply, not a completed result.
    match reply.recv().expect("shutdown delivers a reply") {
        Err(QueryError::Unavailable(_)) => {}
        other => panic!("expected the in-flight query to be cancelled, got {other:?}"),
    }
}

/// Degradation reaches the facade: a zero deadline with `allow_partial`
/// yields `Ok` with the degraded marker (and the trigger lands in both
/// EXPLAIN and the metrics), never `Err(Timeout)`.
#[test]
fn degraded_query_reports_trigger_in_explain_and_metrics() {
    let mut b = EngineBuilder::new();
    for i in 0..20 {
        b.add_xml(
            &format!("d{i}"),
            &format!("<r><a>shared words {i}</a><b>shared extra</b></r>"),
        )
        .unwrap();
    }
    let e = b.build();
    let opts = QueryOptions {
        timeout: Some(Duration::ZERO),
        allow_partial: true,
        ..e.config().query.clone()
    };
    let res = e.query("shared words", Strategy::Dil, &opts).unwrap();
    assert!(res.is_degraded(), "zero deadline + allow_partial must degrade");

    let report = e.explain("shared words", Strategy::Dil, &opts).unwrap();
    let text = report.to_string();
    assert!(
        text.contains("degraded: partial answer (trigger=deadline)"),
        "EXPLAIN missing degraded marker:\n{text}"
    );
    assert!(text.contains("degraded trigger=deadline"), "trace event missing:\n{text}");

    let snap = e.metrics_snapshot();
    assert!(snap.counter("xrank_queries_degraded_total{reason=\"deadline\"}") >= 2);

    // Without allow_partial the same deadline is a hard typed error.
    let hard = QueryOptions { allow_partial: false, ..opts };
    assert!(matches!(
        e.query("shared words", Strategy::Dil, &hard),
        Err(QueryError::Timeout)
    ));
}

/// The engine-level max-in-flight backstop bounds concurrency without
/// deadlocking: more threads than permits all complete.
#[test]
fn max_in_flight_backstop_serves_all_callers() {
    let mut b = EngineBuilder::with_config(EngineConfig {
        max_in_flight: 2,
        ..Default::default()
    });
    for i in 0..20 {
        b.add_xml(&format!("d{i}"), &format!("<r><a>shared words {i}</a></r>")).unwrap();
    }
    let e = Arc::new(b.build());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let e = Arc::clone(&e);
            std::thread::spawn(move || {
                let opts = e.config().query.clone();
                e.query("shared words", Strategy::Dil, &opts).unwrap().hits.len()
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap() > 0);
    }
}
