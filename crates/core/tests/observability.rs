//! End-to-end observability: the Section 4.2.2 worked-example query traced
//! through every processor variant, the HDIL switch decision with both
//! cost estimates, EXPLAIN rendering, slow-query capture, and the serving
//! metrics the executor records into the engine's registry.

use std::sync::Arc;
use std::time::Duration;
use xrank_core::{
    EngineBuilder, EngineConfig, ObsConfig, QueryExecutor, QueryRequest, Strategy, XRankEngine,
};
use xrank_obs::{EventData, Stage, SwitchReason};
use xrank_query::QueryOptions;

/// The paper's Figure 1 / Section 4.2.2 workshop-proceedings example.
const WORKSHOP: &str = r#"<workshop>
  <wtitle>XML and IR a SIGIR Workshop</wtitle>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza-Yates</author>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
      </body>
    </paper>
    <paper id="2"><title>Querying XML in Xyleme</title></paper>
  </proceedings>
</workshop>"#;

fn full_engine() -> XRankEngine {
    let mut b = EngineBuilder::with_config(EngineConfig {
        with_rdil: true,
        with_naive: true,
        ..Default::default()
    });
    b.add_xml("workshop", WORKSHOP).unwrap();
    b.build()
}

/// Keywords that never co-occur except in one element: forces HDIL's
/// rank-sorted phase to give up and fall back to DIL.
fn uncorrelated_engine() -> XRankEngine {
    let mut xml = String::from("<r>");
    for i in 0..300 {
        xml.push_str(&format!("<a{i}>alpha solo {i}</a{i}><b{i}>beta solo {i}</b{i}>"));
    }
    xml.push_str("<rare>alpha beta</rare></r>");
    let mut b = EngineBuilder::new();
    b.add_xml("uncorrelated", &xml).unwrap();
    b.build()
}

#[test]
fn worked_example_trace_stage_set_matches_processor() {
    let e = full_engine();
    let opts = e.config().query.clone();
    for strategy in [
        Strategy::Dil,
        Strategy::Rdil,
        Strategy::Hdil,
        Strategy::NaiveId,
        Strategy::NaiveRank,
    ] {
        let res = e.query_traced("xql language", strategy, &opts).unwrap();
        assert!(!res.hits.is_empty(), "{strategy:?} found no hits");
        let trace = res.trace.as_ref().expect("traced query returns a trace");
        // Every variant resolves terms, opens lists, and presents results.
        assert!(trace.has_stage(Stage::Tokenize), "{strategy:?}: {:?}", trace.stage_names());
        assert!(trace.has_stage(Stage::ListOpen), "{strategy:?}: {:?}", trace.stage_names());
        assert!(trace.has_stage(Stage::Present), "{strategy:?}: {:?}", trace.stage_names());
        match strategy {
            Strategy::Dil => {
                assert!(trace.has_stage(Stage::DeweyMerge));
                assert!(!trace.has_stage(Stage::TaLoop));
                assert!(trace.switch_event().is_none());
            }
            Strategy::Rdil => {
                assert!(trace.has_stage(Stage::TaLoop));
                assert!(trace.has_stage(Stage::BtreeProbe), "RDIL probes the Dewey B+-trees");
                assert!(trace.has_stage(Stage::RangeScan), "candidate scoring scans a prefix range");
                assert!(!trace.has_stage(Stage::DeweyMerge));
            }
            Strategy::Hdil => {
                // HDIL always starts on the rank-sorted phase; whether it
                // ends there or falls back, the trace says which.
                assert!(trace.has_stage(Stage::TaLoop));
                assert_eq!(res.eval.switched_to_dil, trace.has_stage(Stage::DilFallback));
                assert_eq!(res.eval.switched_to_dil, trace.switch_event().is_some());
            }
            Strategy::NaiveId => {
                assert!(trace.has_stage(Stage::MergeJoin));
                assert!(!trace.has_stage(Stage::TaLoop));
            }
            Strategy::NaiveRank => {
                assert!(trace.has_stage(Stage::TaLoop));
                assert!(trace.has_stage(Stage::HashProbe), "naive TA probes the hash index");
            }
        }
    }
}

#[test]
fn untraced_query_carries_no_trace() {
    let e = full_engine();
    let opts = e.config().query.clone();
    let res = e.query("xql language", Strategy::Dil, &opts).unwrap();
    assert!(res.trace.is_none());
}

#[test]
fn hdil_switch_records_both_cost_estimates() {
    let e = uncorrelated_engine();
    let opts = QueryOptions { top_m: 5, ..e.config().query.clone() };
    let res = e.query_traced("alpha beta", Strategy::Hdil, &opts).unwrap();
    assert!(res.eval.switched_to_dil, "uncorrelated keywords must fall back");
    let trace = res.trace.as_ref().unwrap();
    assert!(trace.has_stage(Stage::DilFallback));

    // The structured decision rides on EvalStats…
    let decision = res.eval.switch.as_ref().expect("switch decision recorded");
    assert!(decision.dil_estimate > 0.0);
    assert!(decision.spent >= 0.0);
    match decision.reason {
        // (m-r)·t/r is only computable once r > 0 results are confirmed.
        SwitchReason::EstimateExceeded => {
            let remaining = decision.rdil_remaining.expect("estimate present");
            assert!(remaining > decision.dil_estimate);
            assert!(decision.confirmed > 0);
        }
        SwitchReason::NoProgressBudget | SwitchReason::PrefixExhausted => {
            assert!(decision.rdil_remaining.is_none());
        }
        // This query carries no io_budget, so budget pressure cannot be
        // the trigger here.
        SwitchReason::BudgetPressure => panic!("no io_budget set on this query"),
    }

    // …and the same quantities land in the trace event stream.
    let event = trace.switch_event().expect("switch event in trace");
    assert_eq!(event.stage, Stage::SwitchDecision);
    match &event.data {
        EventData::Switch { spent, rdil_remaining, dil_estimate, confirmed, reason } => {
            assert_eq!(*spent, decision.spent);
            assert_eq!(*rdil_remaining, decision.rdil_remaining);
            assert_eq!(*dil_estimate, decision.dil_estimate);
            assert_eq!(*confirmed, decision.confirmed);
            assert_eq!(*reason, decision.reason);
        }
        other => panic!("switch event carries {other:?}"),
    }
}

#[test]
fn explain_renders_for_all_five_variants() {
    let e = full_engine();
    let opts = e.config().query.clone();
    for (strategy, label) in [
        (Strategy::Dil, "dil"),
        (Strategy::Rdil, "rdil"),
        (Strategy::Hdil, "hdil"),
        (Strategy::NaiveId, "naive_id"),
        (Strategy::NaiveRank, "naive_rank"),
    ] {
        let explain = e.explain("xql language", strategy, &opts).unwrap();
        assert_eq!(explain.strategy, label);
        assert!(explain.hits > 0);
        assert!(!explain.trace.stage_names().is_empty());
        let rendered = explain.to_string();
        assert!(rendered.contains("EXPLAIN"), "{rendered}");
        assert!(rendered.contains(label), "{rendered}");
        assert!(rendered.contains("tokenize"), "{rendered}");
    }
}

#[test]
fn per_strategy_counters_and_latency_histograms_record() {
    let e = full_engine();
    let opts = e.config().query.clone();
    for _ in 0..3 {
        e.query("xql language", Strategy::Dil, &opts).unwrap();
    }
    e.query("xql language", Strategy::Rdil, &opts).unwrap();
    let snap = e.metrics_snapshot();
    assert_eq!(snap.counter("xrank_queries_total{strategy=\"dil\"}"), 3);
    assert_eq!(snap.counter("xrank_queries_total{strategy=\"rdil\"}"), 1);
    assert_eq!(snap.counter_family_total("xrank_queries_total"), 4);
    let h = snap
        .histogram("xrank_query_latency_us{strategy=\"dil\"}")
        .expect("latency histogram registered");
    assert_eq!(h.count, 3);
    // Pool gauges publish at snapshot time.
    assert!(snap.gauge("xrank_pool_cache_hits") + snap.gauge("xrank_pool_seq_reads") > 0);
    // And the exposition endpoint carries the same series.
    let text = e.render_metrics();
    assert!(text.contains("xrank_queries_total{strategy=\"dil\"} 3"), "{text}");
    assert!(text.contains("# TYPE xrank_query_latency_us histogram"), "{text}");
}

#[test]
fn error_paths_count_by_kind() {
    // Strategy not built → unavailable. (The keywords must resolve: an
    // unknown keyword short-circuits to an empty result before the
    // strategy dispatch.)
    let mut b = EngineBuilder::new(); // no rdil, no naive
    b.add_xml("workshop", WORKSHOP).unwrap();
    let bare = b.build();
    let opts = bare.config().query.clone();
    let err = bare.query("xql language", Strategy::Rdil, &opts).unwrap_err();
    assert!(matches!(err, xrank_query::QueryError::Unavailable(_)));
    let snap = bare.metrics_snapshot();
    assert_eq!(snap.counter("xrank_query_errors_total{kind=\"unavailable\"}"), 1);
    assert_eq!(snap.counter_family_total("xrank_queries_total"), 0);

    // Expired deadline on a real evaluation → timeout.
    let e = full_engine();
    let timeout_opts =
        QueryOptions { timeout: Some(Duration::ZERO), ..e.config().query.clone() };
    let err = e.query("xql language", Strategy::Dil, &timeout_opts).unwrap_err();
    assert!(matches!(err, xrank_query::QueryError::Timeout));
    let snap = e.metrics_snapshot();
    assert_eq!(snap.counter("xrank_query_errors_total{kind=\"timeout\"}"), 1);
    assert_eq!(snap.counter_family_total("xrank_queries_total"), 0);
}

#[test]
fn slow_query_log_captures_threshold_breaches() {
    let mut b = EngineBuilder::with_config(EngineConfig {
        obs: ObsConfig {
            slow_query_threshold: Duration::ZERO, // everything is "slow"
            slow_log_capacity: 2,
            ..Default::default()
        },
        ..Default::default()
    });
    b.add_xml("workshop", WORKSHOP).unwrap();
    let e = b.build();
    let opts = e.config().query.clone();
    for q in ["xql language", "xml workshop", "querying xyleme"] {
        e.query(q, Strategy::Dil, &opts).unwrap();
    }
    let slow = e.slow_queries();
    // Ring buffer: capacity 2, oldest evicted.
    assert_eq!(slow.len(), 2);
    assert_eq!(slow[0].query, "xml workshop");
    assert_eq!(slow[1].query, "querying xyleme");
    assert!(slow.iter().all(|s| s.strategy == "dil"));
    assert!(e.metrics_snapshot().counter("xrank_slow_queries_total") >= 3);
}

#[test]
fn metrics_disabled_engine_records_nothing() {
    let mut b = EngineBuilder::with_config(EngineConfig {
        obs: ObsConfig { metrics_enabled: false, ..Default::default() },
        ..Default::default()
    });
    b.add_xml("workshop", WORKSHOP).unwrap();
    let e = b.build();
    let opts = e.config().query.clone();
    e.query("xql language", Strategy::Dil, &opts).unwrap();
    let snap = e.metrics_snapshot();
    assert_eq!(snap.counter_family_total("xrank_queries_total"), 0);
    // Tracing still works when metrics are gated off — orthogonal knobs.
    let res = e.query_traced("xql language", Strategy::Dil, &opts).unwrap();
    assert!(res.trace.is_some());
}

#[test]
fn executor_metrics_reach_the_engine_registry() {
    let engine = Arc::new(full_engine());
    let exec = QueryExecutor::new(Arc::clone(&engine), 2, 8);
    const N: usize = 24;
    let pending: Vec<_> = (0..N)
        .map(|_| exec.submit(QueryRequest::new("xql language", Strategy::Hdil)).unwrap())
        .collect();
    for rx in pending {
        rx.recv().unwrap().unwrap();
    }
    exec.shutdown();
    let snap = engine.metrics_snapshot();
    let wall = snap.histogram("xrank_executor_wall_us").expect("wall histogram");
    assert_eq!(wall.count, N as u64);
    let wait = snap.histogram("xrank_executor_queue_wait_us").expect("wait histogram");
    assert_eq!(wait.count, N as u64);
    // Depth gauges return to zero once the queue drains.
    assert_eq!(snap.gauge("xrank_executor_queue_depth"), 0);
    assert_eq!(snap.gauge("xrank_executor_in_flight"), 0);
    assert_eq!(snap.counter("xrank_queries_total{strategy=\"hdil\"}"), N as u64);
    assert_eq!(snap.counter_family_total("xrank_executor_errors_total"), 0);
}
