//! Seeded chaos campaign over the durable update pipeline.
//!
//! One long randomized interleaving of every mutation and every failure
//! the pipeline claims to survive: adds, replaces, deletes, commits,
//! compactions, injected crashes at every [`CrashPoint`], WAL append
//! faults, WAL tail truncation, and silent page rot with scrub +
//! quarantine + self-repair — checked against an oracle after every
//! recovery. The invariants, by mutation outcome:
//!
//! - **Acked** (`Ok` returned): visible after recovery + commit. Always.
//! - **Cleanly rejected** (typed `WalAppend` error): never visible,
//!   recovery or not — rejection is atomic.
//! - **Indeterminate** (call died with `InjectedCrash`, or its staged
//!   record fell in a truncated WAL tail): may surface or not; the
//!   campaign only demands the pipeline keeps serving and never panics.
//!
//! Plus the repair-fidelity check: whenever rot is repaired, rankings
//! for a probe query must be bit-identical to the pre-damage ones, and
//! the Section 4.2.2 worked example must keep its semantic shape to the
//! very end.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use xrank_core::{CrashPoint, EngineConfig, UpdatableXRank, UpdateError, WalFault};

const SEED: u64 = 0x5_ec71_0422; // Section 4.2.2, of course
const ITERATIONS: usize = 240;
const URI_POOL: usize = 14;

const WORKED_EXAMPLE: &str = r#"<workshop>
  <wtitle>XML and IR a Workshop</wtitle>
  <proceedings>
    <paper>
      <title>XQL and Proximal Nodes</title>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section>
          <subsection>At first sight the XQL query language looks</subsection>
        </section>
      </body>
    </paper>
  </proceedings>
</workshop>"#;

const CRASH_POINTS: [CrashPoint; 4] = [
    CrashPoint::DuringSegmentBuild,
    CrashPoint::AfterSegmentSeal,
    CrashPoint::AfterManifestWrite,
    CrashPoint::AfterPublish,
];

fn doc(word: &str) -> String {
    format!("<doc><title>{word} item</title><body>chaos corpus text about {word}</body></doc>")
}

fn uris(e: &UpdatableXRank, query: &str) -> HashSet<String> {
    e.search(query, 64)
        .unwrap()
        .hits
        .into_iter()
        .map(|h| h.doc_uri)
        .collect()
}

/// The oracle: what the campaign knows about every URI it has touched.
#[derive(Default)]
struct Oracle {
    /// URI → its acked content word. Must be visible after recovery.
    expected: BTreeMap<String, String>,
    /// URIs whose expected content is still staged (not yet committed) —
    /// the set a WAL-tail truncation is allowed to lose.
    pending: HashSet<String>,
    /// URIs whose last mutation died indeterminately: no assertions.
    limbo: HashSet<String>,
    /// (uri, word) pairs of cleanly-rejected writes: never visible.
    rejected: Vec<(String, String)>,
}

impl Oracle {
    fn acked_add(&mut self, uri: &str, word: &str) {
        self.expected.insert(uri.to_string(), word.to_string());
        self.pending.insert(uri.to_string());
        self.limbo.remove(uri);
    }
    fn acked_delete(&mut self, uri: &str) {
        self.expected.remove(uri);
        self.pending.remove(uri);
        self.limbo.remove(uri);
    }
    fn committed(&mut self) {
        self.pending.clear();
    }
    fn indeterminate(&mut self, uri: &str) {
        self.expected.remove(uri);
        self.pending.remove(uri);
        self.limbo.insert(uri.to_string());
    }
    fn clean_reject(&mut self, uri: &str, word: &str) {
        // Atomic rejection: the uri's previous oracle entry still holds.
        self.rejected.push((uri.to_string(), word.to_string()));
    }
}

/// Publishes everything staged, then checks every oracle promise through
/// search.
fn verify(e: &UpdatableXRank, oracle: &mut Oracle, ctx: &str) {
    e.commit().unwrap_or_else(|err| panic!("{ctx}: verify commit: {err}"));
    oracle.committed();
    for (uri, word) in &oracle.expected {
        assert!(
            uris(e, word).contains(uri),
            "{ctx}: acked mutation lost: {uri} ({word})"
        );
    }
    for (uri, word) in &oracle.rejected {
        assert!(
            !uris(e, word).contains(uri),
            "{ctx}: cleanly-rejected write surfaced: {uri} ({word})"
        );
    }
    // The worked example never stops serving its Section 4.2.2 shape.
    let got = e.search("xql language", 10).unwrap();
    let names: Vec<&str> =
        got.hits.iter().filter_map(|h| h.path.last().map(String::as_str)).collect();
    assert!(names.contains(&"subsection"), "{ctx}: most specific result lost: {names:?}");
    assert!(names.contains(&"paper"), "{ctx}: independent occurrences lost: {names:?}");
    assert!(!names.contains(&"section"), "{ctx}: spurious ancestor appeared: {names:?}");
}

/// Flips a byte inside the first non-empty page file of an on-disk
/// segment directory. Returns false if the directory holds no page
/// bytes to rot.
fn corrupt_seg_dir(seg_dir: &Path) -> bool {
    let store = seg_dir.join("store");
    let mut pages: Vec<PathBuf> = match std::fs::read_dir(&store) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "pages"))
            .collect(),
        Err(_) => return false,
    };
    pages.sort();
    for victim in pages {
        let Ok(mut bytes) = std::fs::read(&victim) else { continue };
        if bytes.is_empty() {
            continue;
        }
        let pos = 64.min(bytes.len() - 1);
        bytes[pos] ^= 0xff;
        std::fs::write(&victim, bytes).unwrap();
        return true;
    }
    false
}

/// On-disk `seg-*` directories under the pipeline root.
fn seg_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir() && p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
        })
        .collect();
    v.sort();
    v
}

#[test]
fn chaos_campaign_preserves_every_durability_promise() {
    let dir = {
        let pid = std::process::id();
        let d = std::env::temp_dir().join(format!("xrank-chaos-{pid}"));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut oracle = Oracle::default();
    let mut word_counter = 0usize;

    let mut e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    e.add_xml("workshop", WORKED_EXAMPLE).unwrap();
    e.commit().unwrap();

    let mut crashes = 0u32;
    let mut rejections = 0u32;
    let mut truncations = 0u32;
    let mut repairs = 0u32;

    for iter in 0..ITERATIONS {
        let ctx = format!("iter {iter}");
        match rng.random_range(0..100u32) {
            // ---- add / replace -------------------------------------
            0..=34 => {
                let uri = format!("u{:02}", rng.random_range(0..URI_POOL as u32));
                let word = format!("w{word_counter}");
                word_counter += 1;
                e.add_xml(&uri, &doc(&word)).unwrap_or_else(|err| panic!("{ctx}: add: {err}"));
                oracle.acked_add(&uri, &word);
            }
            // ---- delete --------------------------------------------
            35..=44 => {
                let uri = format!("u{:02}", rng.random_range(0..URI_POOL as u32));
                e.delete(&uri).unwrap_or_else(|err| panic!("{ctx}: delete: {err}"));
                oracle.acked_delete(&uri);
            }
            // ---- plain commit / compact ----------------------------
            45..=54 => {
                e.commit().unwrap_or_else(|err| panic!("{ctx}: commit: {err}"));
                oracle.committed();
            }
            55..=61 => {
                e.compact().unwrap_or_else(|err| panic!("{ctx}: compact: {err}"));
            }
            // ---- crash injection at a random point -----------------
            62..=76 => {
                let point = CRASH_POINTS[rng.random_range(0..CRASH_POINTS.len() as u32) as usize];
                let compacting = rng.random_range(0..2u32) == 0 && e.segment_count() >= 2;
                e.inject_crash(point);
                let outcome = if compacting { e.compact().map(|_| ()) } else { e.commit().map(|_| ()) };
                match outcome {
                    Err(UpdateError::InjectedCrash(_)) => crashes += 1,
                    Ok(()) => {
                        // Nothing reached the armed point (e.g. empty
                        // commit): the publish landed normally.
                        oracle.committed();
                    }
                    Err(err) => panic!("{ctx}: unexpected failure: {err}"),
                }
                // A commit that died anywhere leaves its batch acked in
                // the WAL; after AfterPublish it is even published. The
                // oracle keeps expecting every acked doc either way.
                // "Kill" the process and recover — also disposes of a
                // possibly still-armed crash.
                drop(e);
                e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
                verify(&e, &mut oracle, &format!("{ctx}: post-crash recovery"));
            }
            // ---- clean WAL-append rejection ------------------------
            77..=84 => {
                let uri = format!("u{:02}", rng.random_range(0..URI_POOL as u32));
                let word = format!("w{word_counter}");
                word_counter += 1;
                e.wal_inject_fault(Some(WalFault {
                    after: 0,
                    times: 1,
                    no_space: rng.random_range(0..2u32) == 0,
                }));
                match e.add_xml(&uri, &doc(&word)) {
                    Err(UpdateError::WalAppend(_)) => {
                        rejections += 1;
                        oracle.clean_reject(&uri, &word);
                    }
                    other => panic!("{ctx}: expected WalAppend rejection, got {other:?}"),
                }
            }
            // ---- WAL tail truncation (lost un-synced suffix) -------
            85..=90 => {
                drop(e);
                let wal_path = dir.join("wal.log");
                if let Ok(bytes) = std::fs::read(&wal_path) {
                    if !bytes.is_empty() {
                        let keep = rng.random_range(0..bytes.len() as u64 + 1) as usize;
                        std::fs::write(&wal_path, &bytes[..keep]).unwrap();
                        truncations += 1;
                        // Whatever was still staged may be in the lost
                        // suffix: all pending URIs become indeterminate.
                        for uri in oracle.pending.clone() {
                            oracle.indeterminate(&uri);
                        }
                    }
                }
                e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
                verify(&e, &mut oracle, &format!("{ctx}: post-truncation recovery"));
            }
            // ---- silent page rot → scrub → quarantine → repair -----
            _ => {
                // Publish first so the probe snapshot below and the rot
                // target are both part of the served state.
                e.commit().unwrap_or_else(|err| panic!("{ctx}: pre-rot commit: {err}"));
                oracle.committed();
                let before = e.search("xql language", 10).unwrap();

                let dirs = seg_dirs(&dir);
                let victim = &dirs[rng.random_range(0..dirs.len() as u64) as usize];
                if corrupt_seg_dir(victim) {
                    let report = e.scrub_full();
                    // The victim directory may be a non-live fallback
                    // (kept one publish for crash safety): rot there is
                    // invisible, and that is correct.
                    for seg in report.corrupt_segments {
                        assert!(
                            e.repair_segment(seg)
                                .unwrap_or_else(|err| panic!("{ctx}: repair: {err}")),
                        );
                        repairs += 1;
                    }
                    assert!(e.quarantined_segments().is_empty(), "{ctx}: quarantine stuck");
                    assert!(
                        e.scrub_full().corrupt_segments.is_empty(),
                        "{ctx}: rot survived repair"
                    );

                    // Commit-built segments repair bit-identically (the
                    // dedicated scrub_repair test pins that); fold-built
                    // segments were sealed with a warm-start ElemRank
                    // seed a cold rebuild cannot reconstruct, so their
                    // scores may differ in the iteration-convergence
                    // tail. Same results, same order, same deweys — and
                    // scores within the solver's tolerance.
                    let after = e.search("xql language", 10).unwrap();
                    assert_eq!(before.hits.len(), after.hits.len(), "{ctx}: repair changed results");
                    for (x, y) in before.hits.iter().zip(&after.hits) {
                        assert_eq!(x.dewey, y.dewey, "{ctx}: repair changed deweys");
                        assert!(
                            (x.score - y.score).abs() <= 1e-6 * x.score.abs().max(1.0),
                            "{ctx}: repair moved a score beyond solver tolerance: {} -> {}",
                            x.score,
                            y.score
                        );
                    }
                    verify(&e, &mut oracle, &format!("{ctx}: post-repair"));
                }
            }
        }

        // Periodic full audit + compaction to keep the segment count
        // (and reopen cost) bounded.
        if iter % 40 == 39 {
            e.compact().unwrap_or_else(|err| panic!("{ctx}: audit compact: {err}"));
            verify(&e, &mut oracle, &format!("{ctx}: periodic audit"));
        }
    }

    // Final audit after one last recovery.
    drop(e);
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    verify(&e, &mut oracle, "final recovery");

    // The campaign must actually have exercised every failure arm.
    assert!(crashes >= 10, "only {crashes} injected crashes fired");
    assert!(rejections >= 5, "only {rejections} clean rejections fired");
    assert!(truncations >= 3, "only {truncations} WAL truncations fired");
    assert!(repairs >= 3, "only {repairs} scrub repairs fired");

    std::fs::remove_dir_all(&dir).unwrap();
}
