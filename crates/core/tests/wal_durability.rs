//! Write-ahead-log durability contract tests.
//!
//! Three properties, each with its own failure injection:
//!
//! 1. **Acceptance is durable**: a mutation whose call returned `Ok` is
//!    recovered by reopen even if the process dies before the next
//!    `commit` — the log replays it back into the staged set.
//! 2. **Rejection is atomic**: when the log append itself fails (ENOSPC,
//!    EIO), the mutation is rejected with a typed
//!    [`UpdateError::WalAppend`] and NOTHING changed — not the staged
//!    set, not the tombstones, not the published snapshot — and the
//!    rejected document can never resurface, reopen or not.
//! 3. **Damage degrades, never corrupts**: a torn or bit-flipped log
//!    tail silently ends replay at the damage, losing at most a suffix
//!    of unpublished records; the published snapshot and every record
//!    before the damage survive, and the log stays appendable.

use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use xrank_core::{EngineConfig, SyncPolicy, UpdatableXRank, UpdateError, WalFault};

fn doc(word: &str) -> String {
    format!("<doc><title>{word} item</title><body>shared corpus text about {word}</body></doc>")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("xrank-wal-{tag}-{pid}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn uris(e: &UpdatableXRank, query: &str) -> HashSet<String> {
    e.search(query, 64)
        .unwrap()
        .hits
        .into_iter()
        .map(|h| h.doc_uri)
        .collect()
}

/// One failed append rejects exactly that mutation — typed error, no
/// staged entry, no tombstone, no published change — and the pipeline
/// keeps accepting once the fault clears.
#[test]
fn wal_append_failure_rejects_the_mutation_atomically() {
    let dir = tmp_dir("enospc");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    e.add_xml("a", &doc("alpha")).unwrap();
    e.commit().unwrap();

    e.wal_inject_fault(Some(WalFault { after: 0, times: 1, no_space: true }));
    match e.add_xml("x", &doc("xray")) {
        Err(UpdateError::WalAppend(inner)) => {
            let msg = format!("{}", UpdateError::WalAppend(inner));
            assert!(msg.contains("rejected"), "error names the contract: {msg}");
        }
        other => panic!("expected WalAppend rejection, got {other:?}"),
    }
    assert_eq!(e.doc_count(), 1, "nothing staged");
    assert_eq!(e.staged_count(), 0);
    assert!(!uris(&e, "shared corpus").contains("x"));
    assert!(e.metrics().snapshot().counter("xrank_wal_append_failures_total") >= 1);

    // The fault was one-shot: the very next append goes through.
    e.add_xml("x", &doc("xray")).unwrap();
    e.commit().unwrap();
    assert!(uris(&e, "shared corpus").contains("x"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Deletes and replaces hit the log first too: a failed append leaves
/// the published document fully intact — still searchable, no tombstone.
#[test]
fn wal_append_failure_leaves_delete_and_replace_untouched() {
    let dir = tmp_dir("del-replace");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    e.add_xml("a", &doc("alpha")).unwrap();
    e.commit().unwrap();

    e.wal_inject_fault(Some(WalFault { after: 0, times: 2, no_space: false }));
    assert!(matches!(e.delete("a"), Err(UpdateError::WalAppend(_))));
    assert_eq!(e.tombstone_count(), 0, "rejected delete left no tombstone");
    assert!(uris(&e, "alpha").contains("a"), "document still serves");

    assert!(matches!(e.add_xml("a", &doc("beta")), Err(UpdateError::WalAppend(_))));
    assert!(uris(&e, "alpha").contains("a"), "rejected replace kept the old version");
    assert_eq!(e.staged_count(), 0);

    // Fault exhausted: the replace now lands and supersedes cleanly.
    e.add_xml("a", &doc("beta")).unwrap();
    e.commit().unwrap();
    assert!(uris(&e, "beta").contains("a"));
    assert!(uris(&e, "alpha").is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cleanly-rejected mutation must never resurface — not even through
/// recovery, which replays only *logged* (accepted) records.
#[test]
fn rejected_mutation_never_resurrects_after_reopen() {
    let dir = tmp_dir("ghost");
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.add_xml("a", &doc("alpha")).unwrap();
        e.commit().unwrap();
        e.wal_inject_fault(Some(WalFault { after: 0, times: 1, no_space: true }));
        assert!(matches!(e.add_xml("ghost", &doc("spectral")), Err(UpdateError::WalAppend(_))));
    }
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    assert_eq!(e.doc_count(), 1, "no ghost in staged");
    e.commit().unwrap();
    assert!(uris(&e, "spectral").is_empty(), "rejected doc stays gone");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The headline guarantee: accepted-but-uncommitted mutations survive a
/// process death. Drop without commit, reopen, and the staged set is
/// back — including a replace's tombstone half and an uncommitted
/// delete.
#[test]
fn acked_mutations_survive_reopen_without_commit() {
    let dir = tmp_dir("acked");
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.add_xml("a", &doc("alpha")).unwrap();
        e.add_xml("b", &doc("beta")).unwrap();
        e.commit().unwrap();
        // Acked, never committed: one fresh add, one replace, one delete.
        e.add_xml("c", &doc("gamma")).unwrap();
        e.add_xml("a", &doc("delta")).unwrap();
        e.delete("b").unwrap();
    } // process "dies" with the batch un-committed

    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    assert_eq!(e.staged_count(), 2, "c + replacement of a");
    // The delete itself published its tombstone inline (and checkpointed
    // the log), so exactly the two still-staged adds replay.
    assert_eq!(e.metrics().snapshot().counter("xrank_wal_replayed_records_total"), 2);
    e.commit().unwrap();
    let found = uris(&e, "shared corpus");
    assert!(found.contains("c"), "uncommitted add recovered: {found:?}");
    assert!(uris(&e, "delta").contains("a"), "replace recovered the new version");
    assert!(uris(&e, "alpha").is_empty(), "replace tombstone recovered");
    assert!(!found.contains("b"), "uncommitted delete recovered: {found:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `wal.enabled = false` restores the pre-log pipeline bit-for-bit:
/// staged documents die with the process and no log file is created.
#[test]
fn disabled_wal_restores_pre_log_semantics() {
    let dir = tmp_dir("disabled");
    let cfg = EngineConfig { wal: xrank_core::WalConfig { enabled: false, ..Default::default() }, ..Default::default() };
    {
        let e = UpdatableXRank::open(&dir, cfg.clone()).unwrap();
        e.add_xml("a", &doc("alpha")).unwrap();
        e.commit().unwrap();
        e.add_xml("b", &doc("beta")).unwrap();
    }
    assert!(!dir.join("wal.log").exists(), "no log file without the feature");
    let e = UpdatableXRank::open(&dir, cfg).unwrap();
    assert_eq!(e.doc_count(), 1, "staged doc died with the process");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Every sync policy accepts writes, checkpoints, and replays. (An
/// in-process drop flushes buffered writes on close, so even `Never`
/// recovers here — the policies differ only in what a hard kill can
/// lose.)
#[test]
fn all_sync_policies_accept_and_replay() {
    for (i, sync) in [
        SyncPolicy::Always,
        SyncPolicy::GroupCommit(std::time::Duration::from_millis(5)),
        SyncPolicy::Never,
    ]
    .into_iter()
    .enumerate()
    {
        let dir = tmp_dir(&format!("policy-{i}"));
        let cfg = EngineConfig {
            wal: xrank_core::WalConfig { enabled: true, sync },
            ..Default::default()
        };
        {
            let e = UpdatableXRank::open(&dir, cfg.clone()).unwrap();
            e.add_xml("a", &doc("alpha")).unwrap();
            e.commit().unwrap();
            e.add_xml("b", &doc("beta")).unwrap();
            e.wal_sync().unwrap(); // manual flush is always available
        }
        let e = UpdatableXRank::open(&dir, cfg).unwrap();
        assert_eq!(e.staged_count(), 1, "{sync:?}");
        e.commit().unwrap();
        assert!(uris(&e, "beta").contains("b"), "{sync:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Truncate the log at EVERY byte prefix: reopen must always succeed,
/// the published snapshot must always survive, and the recovered staged
/// set must be a *prefix* of the acked sequence — a torn tail loses a
/// suffix of unpublished records, never a middle record, never
/// everything.
#[test]
fn every_byte_prefix_of_the_log_replays_a_prefix_of_acked_records() {
    let dir = tmp_dir("prefix");
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.add_xml("a", &doc("alpha")).unwrap();
        e.commit().unwrap();
        e.add_xml("c1", &doc("one")).unwrap();
        e.add_xml("c2", &doc("two")).unwrap();
        e.add_xml("c3", &doc("three")).unwrap();
    }
    let full = std::fs::read(dir.join("wal.log")).unwrap();
    let staged_words = ["one", "two", "three"];

    let mut max_recovered = 0usize;
    let mut prev_recovered = 0usize;
    for len in 0..=full.len() {
        std::fs::write(dir.join("wal.log"), &full[..len]).unwrap();
        let e = UpdatableXRank::open(&dir, EngineConfig::default())
            .unwrap_or_else(|err| panic!("prefix {len}/{}: open failed: {err}", full.len()));
        let k = e.staged_count();
        assert!(k <= 3, "prefix {len}: staged {k}");
        assert!(
            k >= prev_recovered || k == 0,
            "prefix {len}: longer prefix recovered fewer records ({prev_recovered} -> {k})"
        );
        prev_recovered = k;
        max_recovered = max_recovered.max(k);

        // Publish whatever was recovered and check the prefix property
        // through search: c2 present implies c1 present, etc.
        e.commit().unwrap();
        let found = uris(&e, "shared corpus");
        assert!(found.contains("a"), "prefix {len}: published doc lost: {found:?}");
        let mut seen_gap = false;
        for (i, w) in staged_words.iter().enumerate() {
            let here = uris(&e, w).contains(&format!("c{}", i + 1));
            assert!(
                !(here && seen_gap),
                "prefix {len}: c{} recovered past a lost earlier record",
                i + 1
            );
            seen_gap |= !here;
        }
        // Reset the directory to published-doc-"a" + the full log for
        // the next prefix: tear down everything this iteration staged.
        drop(e);
        std::fs::remove_dir_all(&dir).unwrap();
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.add_xml("a", &doc("alpha")).unwrap();
        e.commit().unwrap();
        drop(e);
    }
    assert_eq!(max_recovered, 3, "the full log replays every record");
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Arbitrary single-byte corruption anywhere in the log — header
    /// included — never panics recovery, never loses the published
    /// snapshot, and never resurrects a document that was not acked.
    fn random_log_corruption_degrades_but_never_corrupts(
        pos_ppm in 0u32..1_000_000,
        xor in 1u32..=255,
    ) {
        let xor = xor as u8;
        let dir = tmp_dir(&format!("flip-{}", pos_ppm as u64 ^ xor as u64));
        {
            let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
            e.add_xml("a", &doc("alpha")).unwrap();
            e.commit().unwrap();
            e.add_xml("c1", &doc("one")).unwrap();
            e.add_xml("c2", &doc("two")).unwrap();
        }
        let path = dir.join("wal.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_ppm as usize * bytes.len() / 1_000_000).min(bytes.len() - 1);
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).unwrap();

        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        prop_assert!(e.staged_count() <= 2, "replay invented records");
        e.commit().unwrap();
        let found = uris(&e, "shared corpus");
        prop_assert!(found.contains("a"), "published doc lost: {found:?}");
        prop_assert!(found.len() <= 3, "unacked doc appeared: {found:?}");
        // The damaged log was checkpointed at open: the pipeline stays
        // appendable afterwards.
        e.add_xml("d", &doc("fresh")).unwrap();
        e.commit().unwrap();
        prop_assert!(uris(&e, "fresh").contains("d"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
