//! End-to-end tests of the engine facade.

use std::collections::HashSet;
use xrank_core::{AnswerNodes, EngineBuilder, EngineConfig, Strategy, XRankEngine};
use xrank_query::QueryOptions;

const WORKSHOP: &str = r#"<workshop>
  <wtitle>XML and IR a SIGIR Workshop</wtitle>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza-Yates</author>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
      </body>
    </paper>
    <paper id="2"><title>Querying XML in Xyleme</title></paper>
  </proceedings>
</workshop>"#;

fn engine() -> XRankEngine {
    let mut b = EngineBuilder::new();
    b.add_xml("workshop", WORKSHOP).unwrap();
    b.build()
}

fn full_engine() -> XRankEngine {
    let mut b = EngineBuilder::with_config(EngineConfig {
        with_rdil: true,
        with_naive: true,
        ..Default::default()
    });
    b.add_xml("workshop", WORKSHOP).unwrap();
    b.build()
}

#[test]
fn search_returns_most_specific_results() {
    let e = engine();
    let res = e.search("xql language", 10).unwrap();
    let tags: Vec<&str> =
        res.hits.iter().map(|h| h.path.last().unwrap().as_str()).collect();
    assert!(tags.contains(&"subsection"), "most specific element missing: {tags:?}");
    assert!(
        !tags.contains(&"section") && !tags.contains(&"body"),
        "spurious ancestors present: {tags:?}"
    );
    // hits carry presentation context
    let top = &res.hits[0];
    assert!(!top.snippet.is_empty());
    assert_eq!(top.doc_uri, "workshop");
    assert_eq!(top.path.first().map(String::as_str), Some("workshop"));
}

#[test]
fn strategies_agree_on_results() {
    let e = full_engine();
    let opts = QueryOptions { top_m: 10, ..Default::default() };
    let dil = e.search_with("xql language", Strategy::Dil, &opts).unwrap();
    let rdil = e.search_with("xql language", Strategy::Rdil, &opts).unwrap();
    let hdil = e.search_with("xql language", Strategy::Hdil, &opts).unwrap();
    assert_eq!(dil.hits.len(), rdil.hits.len());
    assert_eq!(dil.hits.len(), hdil.hits.len());
    for (a, b) in dil.hits.iter().zip(rdil.hits.iter()) {
        assert_eq!(a.dewey, b.dewey);
        assert!((a.score - b.score).abs() < 1e-9);
    }
    for (a, b) in dil.hits.iter().zip(hdil.hits.iter()) {
        assert_eq!(a.dewey, b.dewey);
    }
}

#[test]
fn naive_strategies_include_spurious_ancestors() {
    let e = full_engine();
    let opts = QueryOptions { top_m: 50, ..Default::default() };
    let dil = e.search_with("xql language", Strategy::Dil, &opts).unwrap();
    let nid = e.search_with("xql language", Strategy::NaiveId, &opts).unwrap();
    let nrk = e.search_with("xql language", Strategy::NaiveRank, &opts).unwrap();
    assert!(nid.hits.len() > dil.hits.len());
    assert_eq!(nid.hits.len(), nrk.hits.len());
}

#[test]
fn unknown_keyword_yields_empty() {
    let e = engine();
    assert!(e.search("xql zzzzunknown", 10).unwrap().hits.is_empty());
    assert!(e.search("", 10).unwrap().hits.is_empty());
    assert!(e.search("   ", 10).unwrap().hits.is_empty());
}

#[test]
fn query_normalization_matches_tokenizer() {
    let e = engine();
    let a = e.search("XQL Language", 10).unwrap();
    let b = e.search("xql language", 10).unwrap();
    assert_eq!(a.hits.len(), b.hits.len());
    // punctuation separates like the indexer
    let c = e.search("xql, language!", 10).unwrap();
    assert_eq!(c.hits.len(), b.hits.len());
}

#[test]
fn answer_nodes_promote_results() {
    let tags: HashSet<String> =
        ["workshop", "paper", "section"].iter().map(|s| s.to_string()).collect();
    let mut b = EngineBuilder::with_config(EngineConfig {
        answer_nodes: AnswerNodes::Tags(tags),
        ..Default::default()
    });
    b.add_xml("workshop", WORKSHOP).unwrap();
    let e = b.build();
    let res = e.search("xql language", 10).unwrap();
    for h in &res.hits {
        let tag = h.path.last().unwrap().as_str();
        assert!(
            matches!(tag, "workshop" | "paper" | "section"),
            "hit {tag} is not an answer node"
        );
    }
    // the subsection hit is promoted to its section
    assert!(res.hits.iter().any(|h| h.path.last().unwrap() == "section"));
}

#[test]
fn html_mode_returns_whole_pages_and_uses_links() {
    let mut b = EngineBuilder::new();
    b.add_html(
        "page/popular",
        r#"<html><title>Popular</title><body>rust search engine</body></html>"#,
    );
    b.add_html(
        "page/fan1",
        r#"<html><body>I love it <a href="page/popular">link</a> rust search</body></html>"#,
    );
    b.add_html(
        "page/fan2",
        r#"<html><body>me too <a href="page/popular">link</a> rust search</body></html>"#,
    );
    let e = b.build();
    let res = e.search("rust search", 10).unwrap();
    assert_eq!(res.hits.len(), 3, "every page matches");
    // linked-to page ranks first (PageRank behaviour)
    assert_eq!(res.hits[0].doc_uri, "page/popular");
    // whole documents only: path is just the root element
    for h in &res.hits {
        assert_eq!(h.path.len(), 1);
    }
}

#[test]
fn mixed_html_and_xml_collections() {
    let mut b = EngineBuilder::new();
    b.add_xml("x", "<doc><part>hybrid corpus</part></doc>").unwrap();
    b.add_html("h", "<html><body>hybrid corpus too</body></html>");
    let e = b.build();
    let res = e.search("hybrid corpus", 10).unwrap();
    assert_eq!(res.hits.len(), 2);
    let uris: HashSet<_> = res.hits.iter().map(|h| h.doc_uri.as_str()).collect();
    assert!(uris.contains("x") && uris.contains("h"));
}

#[test]
fn tag_names_are_searchable() {
    // Section 2.1: element tag names are values — the paper's
    // 'author gray' anecdote depends on this.
    let e = engine();
    let res = e.search("author ricardo", 10).unwrap();
    assert!(!res.hits.is_empty(), "tag name 'author' should match");
}

#[test]
fn io_and_timing_metrics_populated() {
    let e = engine();
    let res = e.search("xql language", 10).unwrap();
    assert!(res.io.physical_reads() > 0, "cold query must do I/O");
    assert!(res.elapsed.as_nanos() > 0);
}

#[test]
fn elem_rank_accessors() {
    let e = engine();
    let r = e.rank_result();
    assert!(r.converged);
    let total: f64 = (0..e.collection().element_count() as u32)
        .map(|i| e.elem_rank_of(i))
        .sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn render_produces_readable_output() {
    let e = engine();
    let res = e.search("xql language", 5).unwrap();
    let text = res.render();
    assert!(text.contains("workshop/"));
    assert!(text.lines().count() >= 2);
}
