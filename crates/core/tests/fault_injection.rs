//! Fault-injection suite: the robustness contract of the storage-to-query
//! read path.
//!
//! The engine is built over a [`FaultStore`] that deterministically
//! injects read errors, torn writes, bit flips, and ENOSPC. The contract
//! under test: a damaged page fails *exactly* the queries whose evaluation
//! touches it — with a typed [`QueryError::Storage`], never a panic —
//! while the same shared engine keeps serving every other query with
//! results identical to the fault-free baseline, including the paper's
//! Figure 1 worked example.

use xrank_core::{EngineBuilder, Strategy, XRankEngine};
use xrank_query::{QueryError, QueryOptions};
use xrank_storage::{
    FaultAt, FaultKind, FaultRule, FaultStore, MemStore, PageId, PageStore, SegmentId,
    StorageError,
};

/// The Figure 1 workshop document (worked example of Sections 2.1–2.3).
const WORKSHOP: &str = r#"<workshop>
  <wtitle>XML and IR a SIGIR Workshop</wtitle>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza-Yates</author>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
      </body>
    </paper>
    <paper id="2"><title>Querying XML in Xyleme</title></paper>
  </proceedings>
</workshop>"#;

fn repeated(word: &str, n: usize) -> String {
    vec![word; n].join(" ")
}

/// The worked example plus two high-volume single-term topics whose
/// inverted lists are large enough to occupy disjoint pages.
fn builder() -> EngineBuilder {
    let mut b = EngineBuilder::new();
    b.add_xml("workshop", WORKSHOP).unwrap();
    for d in 0..40 {
        b.add_xml(
            &format!("a{d}"),
            &format!("<doc><t>{}</t></doc>", repeated("alphaword", 100)),
        )
        .unwrap();
        b.add_xml(
            &format!("b{d}"),
            &format!("<doc><t>{}</t></doc>", repeated("betaword", 100)),
        )
        .unwrap();
    }
    b
}

fn fault_engine(seed: u64) -> XRankEngine<FaultStore<MemStore>> {
    builder()
        .build_with_store(FaultStore::with_seed(MemStore::new(), seed))
        .unwrap()
}

fn hits_of(r: &xrank_core::SearchResults) -> Vec<(xrank_dewey::DeweyId, u64)> {
    r.hits.iter().map(|h| (h.dewey.clone(), h.score.to_bits())).collect()
}

fn all_pages<S: PageStore>(store: &S) -> Vec<PageId> {
    let mut v = Vec::new();
    for s in 0..store.segment_count() {
        let seg = SegmentId(s);
        for p in 0..store.page_count(seg) {
            v.push(PageId::new(seg, p));
        }
    }
    v
}

/// Corrupting one page fails exactly the queries that read it; everything
/// else keeps returning baseline-identical results on the same engine.
#[test]
fn corrupt_page_fails_exactly_the_touching_queries() {
    let e = fault_engine(7);
    let opts = QueryOptions::default();
    let base_a = e.search_with("alphaword", Strategy::Dil, &opts).unwrap();
    let base_b = e.search_with("betaword", Strategy::Dil, &opts).unwrap();
    assert!(!base_a.hits.is_empty() && !base_b.hits.is_empty());

    let store = e.pool().store();
    let (mut fails_a_only, mut fails_b_only) = (0u32, 0u32);
    for page in all_pages(store) {
        store.inject(FaultRule::new(FaultKind::ReadError, FaultAt::Page(page)));
        let a = e.search_with("alphaword", Strategy::Dil, &opts);
        let b = e.search_with("betaword", Strategy::Dil, &opts);
        match (&a, &b) {
            (Err(_), Ok(_)) => fails_a_only += 1,
            (Ok(_), Err(_)) => fails_b_only += 1,
            _ => {}
        }
        for r in [&a, &b] {
            if let Err(err) = r {
                assert!(
                    matches!(err, QueryError::Storage(_)),
                    "page {page:?}: expected a typed storage error, got {err:?}"
                );
            }
        }
        if let Ok(r) = &a {
            assert_eq!(hits_of(r), hits_of(&base_a), "page {page:?} perturbed survivors");
        }
        if let Ok(r) = &b {
            assert_eq!(hits_of(r), hits_of(&base_b), "page {page:?} perturbed survivors");
        }
        store.clear_faults();
    }
    // The two term lists really live on disjoint pages: each query has
    // pages whose loss kills it alone.
    assert!(fails_a_only > 0, "no page failed only the alphaword query");
    assert!(fails_b_only > 0, "no page failed only the betaword query");

    // With all faults cleared the engine is fully healthy again.
    let after = e.search_with("alphaword", Strategy::Dil, &opts).unwrap();
    assert_eq!(hits_of(&after), hits_of(&base_a));
}

/// While one topic's pages are unreadable, the paper's worked example on
/// the same shared engine still returns its exact Section 2 result set.
#[test]
fn paper_worked_example_survives_unrelated_damage() {
    let e = fault_engine(11);
    let opts = QueryOptions::default();

    // Find a page whose loss fails the alphaword query.
    let store = e.pool().store();
    let victim = all_pages(store)
        .into_iter()
        .find(|&page| {
            store.inject(FaultRule::new(FaultKind::ReadError, FaultAt::Page(page)));
            let dead = e.search_with("alphaword", Strategy::Dil, &opts).is_err();
            store.clear_faults();
            dead
        })
        .expect("some page backs the alphaword list");

    store.inject(FaultRule::new(FaultKind::ReadError, FaultAt::Page(victim)));
    assert!(matches!(
        e.search_with("alphaword", Strategy::Dil, &opts),
        Err(QueryError::Storage(_))
    ));
    // The worked example is untouched by the damage: subsection + paper
    // returned, the spurious ancestors (section, body, workshop) excluded.
    let res = e.search_with("xql language", Strategy::Dil, &opts).unwrap();
    let tags: Vec<&str> = res.hits.iter().filter_map(|h| h.path.last().map(String::as_str)).collect();
    assert!(tags.contains(&"subsection"), "most specific result missing: {tags:?}");
    assert!(tags.contains(&"paper"), "independent-occurrence result missing: {tags:?}");
    assert!(
        !tags.contains(&"section") && !tags.contains(&"body") && !tags.contains(&"workshop"),
        "spurious ancestors leaked: {tags:?}"
    );
    store.clear_faults();
}

/// A transient fault fails one evaluation; the very next one succeeds —
/// nothing is poisoned.
#[test]
fn transient_fault_then_full_recovery() {
    let e = fault_engine(3);
    let opts = QueryOptions::default();
    let baseline = e.search_with("xql language", Strategy::Dil, &opts).unwrap();

    let store = e.pool().store();
    store.inject(FaultRule::new(FaultKind::ReadError, FaultAt::Always).times(1));
    let err = e.search_with("xql language", Strategy::Dil, &opts).unwrap_err();
    assert!(matches!(err, QueryError::Storage(StorageError::Io { .. })));
    assert_eq!(store.injected_count(), 1);

    let again = e.search_with("xql language", Strategy::Dil, &opts).unwrap();
    assert_eq!(hits_of(&again), hits_of(&baseline));
}

/// A torn write surfaces as its own typed error.
#[test]
fn torn_write_is_typed() {
    let e = fault_engine(5);
    let opts = QueryOptions::default();
    let store = e.pool().store();
    store.inject(FaultRule::new(FaultKind::TornWrite, FaultAt::Always).times(1));
    let err = e.search_with("xql language", Strategy::Dil, &opts).unwrap_err();
    assert!(
        matches!(err, QueryError::Storage(StorageError::TornWrite { .. })),
        "got {err:?}"
    );
}

/// Silent bit flips never panic any processor: every evaluation returns
/// `Ok` or a typed error, and clearing the faults restores correctness.
#[test]
fn bit_flips_never_panic() {
    let e = fault_engine(13);
    let opts = QueryOptions::default();
    let baseline = e.search_with("xql language", Strategy::Hdil, &opts).unwrap();

    let store = e.pool().store();
    store.inject(FaultRule::new(FaultKind::BitFlip, FaultAt::EveryNth(3)));
    for q in ["xql language", "alphaword", "betaword", "querying xml"] {
        for s in [Strategy::Dil, Strategy::Hdil] {
            // Ok-or-typed-Err; a panic would abort the test.
            let _ = e.search_with(q, s, &opts);
        }
    }
    store.clear_faults();

    let healed = e.search_with("xql language", Strategy::Hdil, &opts).unwrap();
    assert_eq!(hits_of(&healed), hits_of(&baseline));
}

/// A bit flip inside a block-compressed list page is contained. The
/// [`FaultStore`] flips the bit *above* the store's own trailer checksum
/// (modeling corruption past that layer — bad RAM, a flipped bus line),
/// so the defense under test is the v2 page's embedded CRC, which covers
/// every byte after the checksum field: any flip on a list page the query
/// pins yields a typed storage error on exactly the touching queries —
/// never a panic, never silently different survivor results. Pages the
/// query does not read must leave its results bit-identical.
#[test]
fn bit_flip_on_compressed_block_is_typed_and_contained() {
    let e = fault_engine(17);
    let opts = QueryOptions::default();
    let base = e.search_with("alphaword", Strategy::Dil, &opts).unwrap();
    assert!(!base.hits.is_empty());

    let store = e.pool().store();
    let mut failed = 0u32;
    for page in all_pages(store) {
        store.inject(FaultRule::new(FaultKind::BitFlip, FaultAt::Page(page)));
        // Drop the cache so the flipped page is actually re-read from the
        // (faulty) medium instead of being served clean from memory.
        e.pool().clear_cache();
        match e.search_with("alphaword", Strategy::Dil, &opts) {
            Ok(r) => assert_eq!(
                hits_of(&r),
                hits_of(&base),
                "page {page:?}: flip silently changed results"
            ),
            Err(err) => {
                assert!(
                    matches!(err, QueryError::Storage(_)),
                    "page {page:?}: expected typed storage error, got {err:?}"
                );
                failed += 1;
            }
        }
        store.clear_faults();
    }
    assert!(failed > 0, "no page flip ever reached the alphaword query");

    e.pool().clear_cache();
    let healed = e.search_with("alphaword", Strategy::Dil, &opts).unwrap();
    assert_eq!(hits_of(&healed), hits_of(&base));
}

/// A full device fails the *build* with a typed ENOSPC, not a panic.
#[test]
fn enospc_fails_build_with_typed_error() {
    let store = FaultStore::new(MemStore::new());
    store.inject(FaultRule::new(FaultKind::NoSpace, FaultAt::EveryNth(10)));
    let err = builder().build_with_store(store).err().expect("build must fail");
    assert!(matches!(err, StorageError::NoSpace { .. }), "got {err:?}");
}

/// Write errors during build also surface typed.
#[test]
fn write_error_fails_build_with_typed_error() {
    let store = FaultStore::new(MemStore::new());
    store.inject(FaultRule::new(FaultKind::WriteError, FaultAt::EveryNth(7)).times(1));
    let err = builder().build_with_store(store).err().expect("build must fail");
    assert!(matches!(err, StorageError::Io { .. }), "got {err:?}");
}
