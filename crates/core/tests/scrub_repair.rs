//! Online integrity scrub, segment quarantine, and self-repair.
//!
//! The failure model is silent media rot: a byte on a sealed segment's
//! page file flips *after* the segment was built and verified. The
//! contract under that model:
//!
//! - the scrubber finds the damage from its background walk (no query
//!   has to trip over it first);
//! - the damaged segment is quarantined — strict reads fail fast with a
//!   typed error, `allow_partial` reads degrade and keep serving every
//!   healthy segment;
//! - self-repair rebuilds the segment from its CRC-checked docs sidecar,
//!   publishes the replacement atomically, and releases the quarantine;
//! - a repaired commit-built segment serves bit-identical rankings to
//!   the undamaged original.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xrank_core::{
    EngineConfig, ScrubCursor, ScrubPolicy, Scrubber, SearchResults, UpdatableXRank,
};
use xrank_query::QueryError;
use xrank_storage::StorageError;

fn doc(word: &str) -> String {
    format!("<doc><title>{word} item</title><body>shared corpus text about {word}</body></doc>")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("xrank-scrub-{tag}-{pid}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn uris(e: &UpdatableXRank, query: &str) -> HashSet<String> {
    e.search(query, 64)
        .unwrap()
        .hits
        .into_iter()
        .map(|h| h.doc_uri)
        .collect()
}

/// On-disk directory of pipeline segment `seg_id` (zero-padded).
fn seg_dir_name(seg_id: u64) -> String {
    format!("seg-{seg_id:08}")
}

/// Flips one byte inside the first page of segment `seg_id`'s first
/// store file — inside the checksummed region, so the trailer CRC no
/// longer matches what is on the medium.
fn corrupt_first_page(dir: &Path, seg_id: u64) {
    let store = dir.join(seg_dir_name(seg_id)).join("store");
    let mut pages: Vec<PathBuf> = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "pages"))
        .collect();
    pages.sort();
    let victim = pages.first().unwrap_or_else(|| panic!("no page files under {store:?}"));
    let mut bytes = std::fs::read(victim).unwrap();
    assert!(!bytes.is_empty(), "{victim:?} empty");
    bytes[64] ^= 0xff; // well inside the first page's data region
    std::fs::write(victim, bytes).unwrap();
}

/// The only live segment id of a single-segment pipeline, read off the
/// directory layout.
fn only_seg_id(dir: &Path) -> u64 {
    let mut ids: Vec<u64> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            e.file_name().to_string_lossy().strip_prefix("seg-").and_then(|s| s.parse().ok())
        })
        .collect();
    ids.sort_unstable();
    assert_eq!(ids.len(), 1, "expected one live segment, found {ids:?}");
    ids[0]
}

fn assert_identical(a: &SearchResults, b: &SearchResults, what: &str) {
    assert_eq!(a.hits.len(), b.hits.len(), "{what}: result count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.dewey, y.dewey, "{what}: dewey");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{what}: score bytes");
        assert_eq!(x.path, y.path, "{what}: path");
    }
}

/// A clean pipeline scrubs clean: every physical page is visited, no
/// segment is quarantined, and the cursor wraps.
#[test]
fn clean_scrub_visits_every_page_and_quarantines_nothing() {
    let dir = tmp_dir("clean");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    for i in 0..8 {
        e.add_xml(&format!("d{i}"), &doc(&format!("word{i}"))).unwrap();
    }
    e.commit().unwrap();

    let report = e.scrub_full();
    assert!(report.wrapped, "full scrub completes a pass");
    assert!(report.pages_scanned > 0, "file-backed segment has pages");
    assert!(report.corrupt_segments.is_empty());
    assert!(e.quarantined_segments().is_empty());
    let snap = e.metrics().snapshot();
    assert_eq!(snap.counter("xrank_scrub_pages_total"), report.pages_scanned);
    assert_eq!(snap.counter("xrank_scrub_passes_total"), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The scrub is resumable: tiny page budgets make partial passes that
/// pick up where the cursor left off and cover the same total.
#[test]
fn chunked_scrub_resumes_from_its_cursor() {
    let dir = tmp_dir("chunked");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    for i in 0..6 {
        e.add_xml(&format!("d{i}"), &doc(&format!("word{i}"))).unwrap();
    }
    e.commit().unwrap();
    let total = e.scrub_full().pages_scanned;

    let mut cursor = ScrubCursor::default();
    let mut scanned = 0u64;
    let mut chunks = 0u32;
    loop {
        let report = e.scrub_chunk(3, &mut cursor);
        scanned += report.pages_scanned;
        chunks += 1;
        assert!(chunks < 10_000, "cursor never wrapped");
        if report.wrapped {
            break;
        }
    }
    assert_eq!(scanned, total, "chunked pass covers exactly one full pass");
    assert!(chunks > 1, "budget of 3 pages forces multiple chunks");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Silent on-disk damage → scrub quarantines the segment → strict reads
/// fail fast with the typed error, `allow_partial` reads degrade while
/// every healthy segment keeps serving.
#[test]
fn corruption_quarantines_fails_fast_and_degrades_partial() {
    let dir = tmp_dir("quarantine");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    e.add_xml("a", &doc("alpha")).unwrap();
    e.commit().unwrap();
    let victim = only_seg_id(&dir);
    e.add_xml("b", &doc("beta")).unwrap();
    e.commit().unwrap(); // second, healthy segment

    corrupt_first_page(&dir, victim);
    let report = e.scrub_full();
    assert_eq!(report.corrupt_segments, vec![victim], "scrub found the rot");
    assert_eq!(e.quarantined_segments(), vec![victim]);
    assert!(e.metrics().snapshot().counter("xrank_scrub_corruptions_total") >= 1);

    // Strict read: typed fail-fast naming the segment.
    match e.search("shared corpus", 10) {
        Err(QueryError::Storage(StorageError::Quarantined { segment })) => {
            assert_eq!(segment, victim)
        }
        other => panic!("expected Quarantined fail-fast, got {other:?}"),
    }

    // Partial read: healthy segment serves, result marked degraded.
    let opts = xrank_query::QueryOptions { allow_partial: true, ..Default::default() };
    let res = e.search_opts("shared corpus", 10, opts).unwrap();
    assert_eq!(res.degraded, Some(xrank_core::DegradeReason::Quarantined));
    let found: HashSet<String> = res.hits.into_iter().map(|h| h.doc_uri).collect();
    assert!(found.contains("b") && !found.contains("a"), "{found:?}");
    assert!(
        e.metrics().snapshot().counter("xrank_queries_degraded_total{reason=\"quarantined\"}")
            >= 1
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Self-repair end to end: rebuild from the docs sidecar, republish,
/// release the quarantine — documents serve again, tombstones survive,
/// and the corrupt segment's directory is gone.
#[test]
fn repair_rebuilds_republishes_and_releases() {
    let dir = tmp_dir("repair");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    e.add_xml("a", &doc("alpha")).unwrap();
    e.add_xml("dead", &doc("ghostly")).unwrap();
    e.commit().unwrap();
    let victim = only_seg_id(&dir);
    e.delete("dead").unwrap();

    corrupt_first_page(&dir, victim);
    e.scrub_full();
    assert_eq!(e.quarantined_segments(), vec![victim]);

    assert!(e.repair_segment(victim).unwrap(), "repair must rebuild the live segment");
    assert!(e.quarantined_segments().is_empty(), "quarantine released");
    let found = uris(&e, "shared corpus");
    assert!(found.contains("a"), "repaired segment serves: {found:?}");
    assert!(!found.contains("dead"), "tombstone survived the rebuild: {found:?}");
    assert!(e.metrics().snapshot().counter("xrank_scrub_repairs_total") >= 1);

    // The repaired pipeline survives a reopen (the new manifest is the
    // durable truth) and keeps accepting writes.
    drop(e);
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    assert!(uris(&e, "shared corpus").contains("a"));
    e.add_xml("c", &doc("gamma")).unwrap();
    e.commit().unwrap();
    assert!(uris(&e, "shared corpus").contains("c"));
    // GC keeps the previous manifest's segments as a crash fallback, so
    // the corrupt directory outlives the repair by exactly one publish —
    // after the follow-up commit it must be gone.
    assert!(
        !dir.join(seg_dir_name(victim)).exists(),
        "corrupt segment directory retired by gc after the next publish"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Repairing a segment nobody can find is a no-op `Ok(false)` that still
/// clears the quarantine flag (the segment may have been compacted away
/// while quarantined).
#[test]
fn repairing_a_vanished_segment_releases_without_rebuilding() {
    let dir = tmp_dir("vanished");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    e.add_xml("a", &doc("alpha")).unwrap();
    e.commit().unwrap();
    e.quarantine(9999);
    assert_eq!(e.quarantined_segments(), vec![9999]);
    assert!(!e.repair_segment(9999).unwrap(), "nothing to rebuild for a vanished segment");
    assert!(e.quarantined_segments().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A repaired commit-built segment is indistinguishable to a reader:
/// same deweys, same score bits, same paths as before the damage.
#[test]
fn repair_serves_bit_identical_rankings() {
    let dir = tmp_dir("bitident");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    e.add_xml(
        "workshop",
        r#"<workshop><paper><title>XQL and Proximal Nodes</title>
           <abstract>We consider the recently proposed language</abstract>
           <body><section><subsection>At first sight the XQL query language looks</subsection>
           </section></body></paper></workshop>"#,
    )
    .unwrap();
    e.add_xml("other", &doc("unrelated")).unwrap();
    e.commit().unwrap();
    let victim = only_seg_id(&dir);
    let before = e.search("xql language", 10).unwrap();
    assert!(!before.hits.is_empty());

    corrupt_first_page(&dir, victim);
    e.scrub_full();
    assert_eq!(e.quarantined_segments(), vec![victim]);
    e.repair_segment(victim).unwrap();

    let after = e.search("xql language", 10).unwrap();
    assert_identical(&before, &after, "post-repair rankings");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: the per-segment quarantine gauge is born on quarantine and
/// *retired* — gone from the scrape, not zeroed — when repair releases
/// it, so a long-lived process doesn't accrete one dead series per
/// incident.
#[test]
fn quarantine_gauge_is_retired_after_repair() {
    let dir = tmp_dir("gauge");
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    e.add_xml("a", &doc("alpha")).unwrap();
    e.commit().unwrap();
    let victim = only_seg_id(&dir);

    corrupt_first_page(&dir, victim);
    e.scrub_full();
    let series = format!("xrank_scrub_quarantined{{segment=\"{victim}\"}}");
    let render = e.render_metrics();
    assert!(render.contains(&format!("{series} 1")), "flag exported:\n{render}");
    assert!(render.contains("xrank_scrub_quarantined_segments 1"), "{render}");

    e.repair_segment(victim).unwrap();
    let render = e.render_metrics();
    assert!(
        !render.contains("xrank_scrub_quarantined{segment="),
        "per-segment series retired, not zeroed:\n{render}"
    );
    assert!(render.contains("xrank_scrub_quarantined_segments 0"), "{render}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The background worker closes the loop alone: corrupt a page, wait,
/// and the pipeline heals — quarantine seen, repair done, serving again
/// — with no foreground call.
#[test]
fn background_scrubber_heals_without_foreground_help() {
    let dir = tmp_dir("auto");
    let e = Arc::new(UpdatableXRank::open(&dir, EngineConfig::default()).unwrap());
    e.add_xml("a", &doc("alpha")).unwrap();
    e.commit().unwrap();
    let victim = only_seg_id(&dir);
    corrupt_first_page(&dir, victim);

    let mut scrubber = Scrubber::spawn(
        &e,
        ScrubPolicy {
            interval: Duration::from_millis(5),
            pages_per_chunk: 64,
            auto_repair: true,
        },
    );
    scrubber.nudge();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let healed = e.metrics().snapshot().counter("xrank_scrub_repairs_total") >= 1
            && e.quarantined_segments().is_empty();
        if healed {
            break;
        }
        assert!(Instant::now() < deadline, "scrubber never healed the segment");
        std::thread::sleep(Duration::from_millis(10));
    }
    scrubber.shutdown();
    assert!(uris(&e, "shared corpus").contains("a"), "healed pipeline serves");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Boot-time self-repair: damage found by the open-time verification
/// scan is rebuilt before the pipeline comes up, so reopening a rotted
/// directory yields a serving engine, not an error.
#[test]
fn reopen_repairs_rotted_segment_before_serving() {
    let dir = tmp_dir("boot");
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.add_xml("a", &doc("alpha")).unwrap();
        e.commit().unwrap();
    }
    let victim = only_seg_id(&dir);
    corrupt_first_page(&dir, victim);

    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    assert!(uris(&e, "alpha").contains("a"), "rebuilt at open");
    assert_eq!(e.scrub_full().corrupt_segments, Vec::<u64>::new(), "store is clean again");
    std::fs::remove_dir_all(&dir).unwrap();
}
