//! Tests for document-granularity updates (Section 4.5) and disjunctive
//! search.

use xrank_core::{EngineBuilder, EngineConfig, UpdatableXRank};

fn doc(word: &str) -> String {
    format!("<doc><title>{word} item</title><body>shared corpus text about {word}</body></doc>")
}

fn engine_with(docs: &[(&str, &str)]) -> UpdatableXRank {
    let mut e = UpdatableXRank::new(EngineConfig::default());
    for (uri, word) in docs {
        e.add_xml(uri, &doc(word)).unwrap();
    }
    e.commit();
    e
}

#[test]
fn staged_docs_invisible_until_commit() {
    let mut e = UpdatableXRank::new(EngineConfig::default());
    e.add_xml("a", &doc("alpha")).unwrap();
    assert_eq!(e.staged_count(), 1);
    assert!(e.search("alpha", 10).unwrap().hits.is_empty(), "not yet committed");
    e.commit();
    assert_eq!(e.staged_count(), 0);
    assert_eq!(e.search("alpha", 10).unwrap().hits.len(), 2); // title + body
}

#[test]
fn delete_takes_effect_immediately() {
    let mut e = engine_with(&[("a", "alpha"), ("b", "beta")]);
    assert!(!e.search("alpha", 10).unwrap().hits.is_empty());
    assert!(e.delete("a"));
    assert!(e.search("alpha", 10).unwrap().hits.is_empty(), "tombstone filters hits");
    assert!(!e.search("beta", 10).unwrap().hits.is_empty(), "other docs unaffected");
    assert_eq!(e.tombstone_count(), 1);
    assert!(!e.delete("a"), "double delete is a no-op");
}

#[test]
fn incremental_adds_search_across_main_and_delta() {
    let mut e = engine_with(&[("a", "alpha")]);
    e.add_xml("b", &doc("beta")).unwrap();
    e.commit();
    // 'shared' occurs in both documents — results must merge.
    let res = e.search("shared corpus", 10).unwrap();
    let uris: std::collections::HashSet<&str> =
        res.hits.iter().map(|h| h.doc_uri.as_str()).collect();
    assert!(uris.contains("a") && uris.contains("b"), "got {uris:?}");
}

#[test]
fn replace_document() {
    let mut e = engine_with(&[("a", "oldword")]);
    e.add_xml("a", &doc("newword")).unwrap();
    e.commit();
    assert!(e.search("oldword", 10).unwrap().hits.is_empty(), "old content tombstoned");
    assert!(!e.search("newword", 10).unwrap().hits.is_empty(), "new content searchable");
}

#[test]
fn compact_restores_single_engine_and_drops_tombstones() {
    let mut e = engine_with(&[("a", "alpha"), ("b", "beta")]);
    e.delete("a");
    e.add_xml("c", &doc("gamma")).unwrap();
    e.compact();
    assert_eq!(e.tombstone_count(), 0);
    assert_eq!(e.staged_count(), 0);
    assert_eq!(e.main_engine().collection().doc_count(), 2); // b, c
    assert!(e.search("alpha", 10).unwrap().hits.is_empty());
    assert!(!e.search("gamma", 10).unwrap().hits.is_empty());
    assert!(!e.search("beta", 10).unwrap().hits.is_empty());
}

#[test]
fn invalid_xml_rejected_at_add_time() {
    let mut e = UpdatableXRank::new(EngineConfig::default());
    assert!(e.add_xml("bad", "<unclosed>").is_err());
    assert_eq!(e.doc_count(), 0);
}

#[test]
fn merged_ranking_is_score_ordered() {
    let mut e = engine_with(&[("a", "alpha"), ("b", "beta")]);
    e.add_xml("c", &doc("gamma")).unwrap();
    e.commit();
    let res = e.search("shared", 10).unwrap();
    for w in res.hits.windows(2) {
        assert!(w[0].score >= w[1].score, "merged hits out of order");
    }
}

#[test]
fn disjunctive_search_via_engine() {
    let mut b = EngineBuilder::new();
    b.add_xml("d", "<r><a>apple pie</a><b>banana split</b><c>apple banana</c></r>")
        .unwrap();
    let e = b.build();
    // Conjunctive: only <c>.
    // <c> directly, plus <r> via independent occurrences in <a> and <b>.
    assert_eq!(e.search("apple banana", 10).unwrap().hits.len(), 2);
    // Disjunctive: a, b, c.
    let any = e.search_any("apple banana", 10).unwrap();
    assert_eq!(any.hits.len(), 3);
    // Unknown keywords are dropped, not fatal.
    let any = e.search_any("apple zzzznope", 10).unwrap();
    assert_eq!(any.hits.len(), 2);
    // Conjunctive matches rank first (two rank terms vs one).
    let top = &e.search_any("apple banana", 10).unwrap().hits[0];
    assert!(top.path.ends_with(&["c".to_string()]));
}

#[test]
fn search_shares_one_deadline_across_main_and_delta_passes() {
    use std::time::{Duration, Instant};
    use xrank_query::{QueryError, QueryOptions};

    // Main + committed delta: a search runs two passes.
    let mut e = engine_with(&[("a", "alpha")]);
    e.add_xml("b", &doc("beta")).unwrap();
    e.commit();

    // An already-expired absolute deadline must stop the query even though
    // the relative timeout alone would allow it: the shared deadline wins,
    // and the delta pass must NOT get a fresh allowance.
    let expired = QueryOptions {
        deadline_at: Some(Instant::now() - Duration::from_millis(1)),
        timeout: Some(Duration::from_secs(3600)),
        ..Default::default()
    };
    match e.search_opts("shared corpus", 10, expired.clone()) {
        Err(QueryError::Timeout) => {}
        other => panic!("expected shared-deadline timeout, got {other:?}"),
    }

    // Same budget, degradation allowed: one merged partial answer instead.
    let partial = QueryOptions { allow_partial: true, ..expired };
    let res = e.search_opts("shared corpus", 10, partial).unwrap();
    assert_eq!(res.degraded, Some(xrank_core::DegradeReason::Deadline));

    // With headroom the two-pass search still completes and merges fully.
    let roomy = QueryOptions { timeout: Some(Duration::from_secs(3600)), ..Default::default() };
    let res = e.search_opts("shared corpus", 10, roomy).unwrap();
    assert!(res.degraded.is_none());
    let uris: std::collections::HashSet<&str> =
        res.hits.iter().map(|h| h.doc_uri.as_str()).collect();
    assert!(uris.contains("a") && uris.contains("b"), "got {uris:?}");
}
