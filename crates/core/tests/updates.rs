//! Tests for document-granularity updates (Section 4.5), the segmented
//! pipeline semantics, and disjunctive search.

use xrank_core::{EngineBuilder, EngineConfig, UpdatableXRank};

fn doc(word: &str) -> String {
    format!("<doc><title>{word} item</title><body>shared corpus text about {word}</body></doc>")
}

fn engine_with(docs: &[(&str, &str)]) -> UpdatableXRank {
    let e = UpdatableXRank::new(EngineConfig::default());
    for (uri, word) in docs {
        e.add_xml(uri, &doc(word)).unwrap();
    }
    e.commit().unwrap();
    e
}

#[test]
fn staged_docs_invisible_until_commit() {
    let e = UpdatableXRank::new(EngineConfig::default());
    e.add_xml("a", &doc("alpha")).unwrap();
    assert_eq!(e.staged_count(), 1);
    assert!(e.search("alpha", 10).unwrap().hits.is_empty(), "not yet committed");
    let stats = e.commit().unwrap();
    assert_eq!(stats.docs_added, 1);
    assert!(stats.segment_id.is_some());
    assert_eq!(e.staged_count(), 0);
    assert_eq!(e.search("alpha", 10).unwrap().hits.len(), 2); // title + body
}

#[test]
fn empty_commit_is_a_no_op() {
    let e = engine_with(&[("a", "alpha")]);
    let seq = e.commit().unwrap().seq;
    let stats = e.commit().unwrap();
    assert_eq!(stats.docs_added, 0);
    assert!(stats.segment_id.is_none());
    assert_eq!(stats.seq, seq, "no-op commit publishes nothing");
    assert_eq!(e.segment_count(), 1);
}

#[test]
fn delete_takes_effect_immediately() {
    let e = engine_with(&[("a", "alpha"), ("b", "beta")]);
    assert!(!e.search("alpha", 10).unwrap().hits.is_empty());
    assert!(e.delete("a").unwrap());
    assert!(e.search("alpha", 10).unwrap().hits.is_empty(), "tombstone filters hits");
    assert!(!e.search("beta", 10).unwrap().hits.is_empty(), "other docs unaffected");
    assert_eq!(e.tombstone_count(), 1);
    assert!(!e.delete("a").unwrap(), "double delete is a no-op");
}

#[test]
fn incremental_adds_search_across_segments() {
    let e = engine_with(&[("a", "alpha")]);
    e.add_xml("b", &doc("beta")).unwrap();
    e.commit().unwrap();
    assert_eq!(e.segment_count(), 2);
    // 'shared' occurs in both documents — results must merge.
    let res = e.search("shared corpus", 10).unwrap();
    let uris: std::collections::HashSet<&str> =
        res.hits.iter().map(|h| h.doc_uri.as_str()).collect();
    assert!(uris.contains("a") && uris.contains("b"), "got {uris:?}");
}

#[test]
fn replace_document() {
    let e = engine_with(&[("a", "oldword")]);
    e.add_xml("a", &doc("newword")).unwrap();
    e.commit().unwrap();
    assert!(e.search("oldword", 10).unwrap().hits.is_empty(), "old content tombstoned");
    assert!(!e.search("newword", 10).unwrap().hits.is_empty(), "new content searchable");
}

#[test]
fn compact_folds_to_one_segment_and_drops_tombstones() {
    let e = engine_with(&[("a", "alpha"), ("b", "beta")]);
    e.delete("a").unwrap();
    e.add_xml("c", &doc("gamma")).unwrap();
    let stats = e.compact().unwrap();
    assert_eq!(stats.tombstones_dropped, 1);
    assert_eq!(stats.docs_live, 2); // b, c
    assert_eq!(e.tombstone_count(), 0);
    assert_eq!(e.staged_count(), 0);
    assert_eq!(e.segment_count(), 1);
    assert!(e.search("alpha", 10).unwrap().hits.is_empty());
    assert!(!e.search("gamma", 10).unwrap().hits.is_empty());
    assert!(!e.search("beta", 10).unwrap().hits.is_empty());
}

#[test]
fn compaction_warm_starts_elem_rank() {
    let e = engine_with(&[("a", "alpha"), ("b", "beta")]);
    e.add_xml("c", &doc("gamma")).unwrap();
    e.commit().unwrap();
    let stats = e.compact().unwrap();
    assert!(stats.rank_seeded, "fold over existing segments must seed ElemRank");
    assert!(stats.rank_iterations > 0);
    // The ranking after a seeded fold equals a cold from-scratch build.
    let mut b = EngineBuilder::new();
    for (uri, word) in [("a", "alpha"), ("b", "beta"), ("c", "gamma")] {
        b.add_xml(uri, &doc(word)).unwrap();
    }
    let cold = b.build();
    let folded = e.search("shared", 10).unwrap();
    let reference = cold.search("shared", 10).unwrap();
    assert_eq!(folded.hits.len(), reference.hits.len());
    // Seeded iteration reaches the same fixed point within the solver
    // tolerance (not bit-identically — near-ties may reorder), so compare
    // per-element scores keyed by dewey rather than positionally.
    let by_dewey: std::collections::HashMap<String, f64> = reference
        .hits
        .iter()
        .map(|h| (format!("{:?}", h.dewey), h.score))
        .collect();
    for f in &folded.hits {
        let r = by_dewey
            .get(&format!("{:?}", f.dewey))
            .unwrap_or_else(|| panic!("hit {:?} missing from cold build", f.dewey));
        assert!(
            (f.score - r).abs() < 1e-3,
            "seeded fold drifted at {:?}: {} vs {}",
            f.dewey,
            f.score,
            r
        );
    }
}

#[test]
fn merge_small_folds_only_small_segments() {
    let e = UpdatableXRank::new(EngineConfig::default());
    // One big segment...
    let big: String = (0..40).map(|i| format!("<s>filler words number {i}</s>")).collect();
    e.add_xml("big", &format!("<doc>{big}</doc>")).unwrap();
    e.commit().unwrap();
    // ...and three small ones.
    for (uri, word) in [("s1", "alpha"), ("s2", "beta"), ("s3", "gamma")] {
        e.add_xml(uri, &doc(word)).unwrap();
        e.commit().unwrap();
    }
    assert_eq!(e.segment_count(), 4);
    let stats = e.merge_small(512, None).unwrap();
    assert_eq!(stats.segments_folded, 3, "only the small segments fold");
    assert_eq!(e.segment_count(), 2, "big segment survives untouched");
    for q in ["alpha", "beta", "gamma", "filler"] {
        assert!(!e.search(q, 10).unwrap().hits.is_empty(), "{q} lost in merge");
    }
}

#[test]
fn invalid_xml_rejected_at_add_time() {
    let e = UpdatableXRank::new(EngineConfig::default());
    assert!(e.add_xml("bad", "<unclosed>").is_err());
    assert_eq!(e.doc_count(), 0);
}

#[test]
fn merged_ranking_is_score_ordered() {
    let e = engine_with(&[("a", "alpha"), ("b", "beta")]);
    e.add_xml("c", &doc("gamma")).unwrap();
    e.commit().unwrap();
    let res = e.search("shared", 10).unwrap();
    for w in res.hits.windows(2) {
        assert!(w[0].score >= w[1].score, "merged hits out of order");
    }
}

#[test]
fn top_k_refills_past_tombstoned_documents() {
    // One document matches "common" from many elements and would dominate
    // the top of the merged stream; after tombstoning it, the requested k
    // live hits must still come back (the naive fixed over-fetch used to
    // underfill here).
    let e = UpdatableXRank::new(EngineConfig::default());
    // Every document has the same shape (64 <p> under the root), so every
    // matching element carries the same ElemRank and scores tie exactly;
    // the dewey tie-break then puts the hot doc's 64 hits ahead of the
    // single hit each live doc contributes.
    let hot: String = (0..64).map(|i| format!("<p>common topic {i}</p>")).collect();
    e.add_xml("hot", &format!("<doc>{hot}</doc>")).unwrap();
    for i in 0..6 {
        let filler: String = (0..63).map(|j| format!("<p>unrelated filler {j}</p>")).collect();
        e.add_xml(
            &format!("live{i}"),
            &format!("<doc>{filler}<p>common topic {i}</p></doc>"),
        )
        .unwrap();
    }
    e.commit().unwrap();

    let full = e.search("common topic", 6).unwrap();
    assert_eq!(full.hits.len(), 6);
    assert!(full.hits.iter().any(|h| h.doc_uri == "hot"));

    e.delete("hot").unwrap();
    let filtered = e.search("common topic", 6).unwrap();
    assert_eq!(
        filtered.hits.len(),
        6,
        "k live hits exist, the page must re-fill past the tombstoned doc"
    );
    assert!(filtered.hits.iter().all(|h| h.doc_uri != "hot"));
}

#[test]
fn pinned_snapshot_is_isolated_from_later_writes() {
    let e = engine_with(&[("a", "alpha")]);
    let pin = e.pin();
    assert_eq!(pin.live_doc_count(), 1);
    e.add_xml("b", &doc("beta")).unwrap();
    e.commit().unwrap();
    e.delete("a").unwrap();
    // The pin still sees the old state; the pipeline sees the new one.
    assert_eq!(pin.live_doc_count(), 1);
    assert_eq!(pin.segment_count(), 1);
    assert_eq!(pin.tombstone_count(), 0);
    assert_eq!(e.doc_count(), 1); // b
    assert_eq!(e.tombstone_count(), 1);
    drop(pin);
}

#[test]
fn disjunctive_search_via_engine() {
    let mut b = EngineBuilder::new();
    b.add_xml("d", "<r><a>apple pie</a><b>banana split</b><c>apple banana</c></r>")
        .unwrap();
    let e = b.build();
    // Conjunctive: only <c>.
    // <c> directly, plus <r> via independent occurrences in <a> and <b>.
    assert_eq!(e.search("apple banana", 10).unwrap().hits.len(), 2);
    // Disjunctive: a, b, c.
    let any = e.search_any("apple banana", 10).unwrap();
    assert_eq!(any.hits.len(), 3);
    // Unknown keywords are dropped, not fatal.
    let any = e.search_any("apple zzzznope", 10).unwrap();
    assert_eq!(any.hits.len(), 2);
    // Conjunctive matches rank first (two rank terms vs one).
    let top = &e.search_any("apple banana", 10).unwrap().hits[0];
    assert!(top.path.ends_with(&["c".to_string()]));
}

#[test]
fn search_shares_one_deadline_across_segment_passes() {
    use std::time::{Duration, Instant};
    use xrank_query::{QueryError, QueryOptions};

    // Two committed segments: a search runs two passes.
    let e = engine_with(&[("a", "alpha")]);
    e.add_xml("b", &doc("beta")).unwrap();
    e.commit().unwrap();

    // An already-expired absolute deadline must stop the query even though
    // the relative timeout alone would allow it: the shared deadline wins,
    // and later segment passes must NOT get a fresh allowance.
    let expired = QueryOptions {
        deadline_at: Some(Instant::now() - Duration::from_millis(1)),
        timeout: Some(Duration::from_secs(3600)),
        ..Default::default()
    };
    match e.search_opts("shared corpus", 10, expired.clone()) {
        Err(QueryError::Timeout) => {}
        other => panic!("expected shared-deadline timeout, got {other:?}"),
    }

    // Same budget, degradation allowed: one merged partial answer instead.
    let partial = QueryOptions { allow_partial: true, ..expired };
    let res = e.search_opts("shared corpus", 10, partial).unwrap();
    assert_eq!(res.degraded, Some(xrank_core::DegradeReason::Deadline));

    // With headroom the multi-pass search still completes and merges fully.
    let roomy = QueryOptions { timeout: Some(Duration::from_secs(3600)), ..Default::default() };
    let res = e.search_opts("shared corpus", 10, roomy).unwrap();
    assert!(res.degraded.is_none());
    let uris: std::collections::HashSet<&str> =
        res.hits.iter().map(|h| h.doc_uri.as_str()).collect();
    assert!(uris.contains("a") && uris.contains("b"), "got {uris:?}");
}

#[test]
fn update_metrics_track_segment_lifecycle() {
    let e = engine_with(&[("a", "alpha")]);
    e.add_xml("b", &doc("beta")).unwrap();
    e.commit().unwrap();
    e.delete("a").unwrap();
    e.compact().unwrap();
    let text = e.render_metrics();
    assert!(text.contains("xrank_update_commits_total 2"), "{text}");
    assert!(text.contains("xrank_update_compactions_total 1"), "{text}");
    assert!(text.contains("xrank_update_segments_live 1"), "{text}");
    assert!(text.contains("xrank_update_tombstones_gced_total 1"), "{text}");
    assert!(text.contains("xrank_update_snapshot_pins 0"), "{text}");
}
