//! Snapshot-isolation acceptance: readers keep searching — without
//! errors, blocking, or half-visible state — while commits and
//! compactions publish new snapshots underneath them, and the background
//! [`Compactor`] folds segments and shuts down cleanly.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xrank_core::{CompactionPolicy, Compactor, EngineConfig, UpdatableXRank};

fn doc(word: &str, i: usize) -> String {
    format!(
        "<doc><title>{word} item {i}</title>\
         <body>shared corpus text about {word} number {i}</body></doc>"
    )
}

#[test]
fn readers_run_uninterrupted_through_commits_and_compactions() {
    let e = Arc::new(UpdatableXRank::new(EngineConfig::default()));
    e.add_xml("seed", &doc("seed", 0)).unwrap();
    e.commit().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let searches = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // Four readers hammer the pipeline the whole time. Every result
        // must be complete and well-ordered: a search that overlaps a
        // publish sees either the old snapshot or the new one, never a
        // mixture, and "seed" is live in all of them.
        for _ in 0..4 {
            let e = Arc::clone(&e);
            let stop = Arc::clone(&stop);
            let searches = Arc::clone(&searches);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let res = e.search("shared corpus", 10).unwrap();
                    assert!(
                        res.hits.iter().any(|h| h.doc_uri == "seed"),
                        "committed doc vanished mid-read"
                    );
                    for w in res.hits.windows(2) {
                        assert!(w[0].score >= w[1].score, "merged page out of order");
                    }
                    searches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Meanwhile one writer commits, replaces, deletes, and compacts.
        for round in 0..8 {
            e.add_xml(&format!("doc{round}"), &doc("alpha", round)).unwrap();
            e.add_xml("churn", &doc("beta", round)).unwrap(); // replaced every round
            e.commit().unwrap();
            if round % 3 == 2 {
                e.delete(&format!("doc{}", round - 1)).unwrap();
                e.compact().unwrap();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(searches.load(Ordering::Relaxed) > 0, "readers never got a search in");
    // End state: seed + churn + 8 docN - 2 deleted.
    assert_eq!(e.doc_count(), 8);
    e.compact().unwrap();
    assert_eq!(e.tombstone_count(), 0, "compaction dropped the tombstones");
    assert_eq!(e.doc_count(), 8);
}

#[test]
fn pinned_snapshot_outlives_compaction_of_its_segments() {
    let e = UpdatableXRank::new(EngineConfig::default());
    e.add_xml("a", &doc("alpha", 1)).unwrap();
    e.commit().unwrap();
    e.add_xml("b", &doc("beta", 2)).unwrap();
    e.commit().unwrap();

    let pin = e.pin();
    assert_eq!(pin.segment_count(), 2);

    // Compact away both segments the pin references, then keep writing.
    e.delete("a").unwrap();
    e.compact().unwrap();
    e.add_xml("c", &doc("gamma", 3)).unwrap();
    e.commit().unwrap();

    // The pinned snapshot still reads its (now superseded, ephemeral)
    // segments: two segments, no tombstones, doc "a" alive.
    assert_eq!(pin.segment_count(), 2);
    assert_eq!(pin.live_doc_count(), 2);
    assert_eq!(e.doc_count(), 2); // b, c
    drop(pin);
}

#[test]
fn background_compactor_folds_segments_and_shuts_down() {
    let e = Arc::new(UpdatableXRank::new(EngineConfig::default()));
    let policy = CompactionPolicy {
        max_segments: 3,
        small_bytes: 1 << 20,
        interval: Duration::from_millis(20),
    };
    let mut compactor = Compactor::spawn(&e, policy);

    for i in 0..6 {
        e.add_xml(&format!("d{i}"), &doc("alpha", i)).unwrap();
        e.commit().unwrap();
        compactor.nudge();
    }

    // The worker runs on its own clock; wait for it to fold below the
    // threshold, bounded so a hang fails the test instead of wedging it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while e.segment_count() > 3 {
        assert!(std::time::Instant::now() < deadline, "compactor never folded");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Nothing lost in the folds.
    let res = e.search("shared corpus", 20).unwrap();
    assert_eq!(res.hits.iter().filter(|h| h.path.last().map(String::as_str) == Some("body")).count(), 6);

    compactor.shutdown();
    compactor.shutdown(); // idempotent

    // After shutdown the worker is gone: more commits pile up segments and
    // nobody folds them.
    let before = e.segment_count();
    for i in 6..9 {
        e.add_xml(&format!("d{i}"), &doc("alpha", i)).unwrap();
        e.commit().unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(e.segment_count(), before + 3, "worker kept folding after shutdown");
}

#[test]
fn dropping_the_compactor_joins_the_worker() {
    let e = Arc::new(UpdatableXRank::new(EngineConfig::default()));
    {
        let _compactor = Compactor::spawn(&e, CompactionPolicy::default());
        e.add_xml("a", &doc("alpha", 1)).unwrap();
        e.commit().unwrap();
    } // Drop shuts the worker down; must not hang or panic.
    assert_eq!(e.doc_count(), 1);
}

#[test]
fn concurrent_commit_attempts_serialize_without_corruption() {
    // Two writer threads race commits of distinct documents; the writer
    // mutex serializes them, and both publishes must survive.
    let e = Arc::new(UpdatableXRank::new(EngineConfig::default()));
    std::thread::scope(|scope| {
        for t in 0..2 {
            let e = Arc::clone(&e);
            scope.spawn(move || {
                for i in 0..4 {
                    e.add_xml(&format!("w{t}-{i}"), &doc("alpha", i)).unwrap();
                    e.commit().unwrap();
                }
            });
        }
    });
    assert_eq!(e.doc_count(), 8);
    let res = e.search("alpha", 32).unwrap();
    let uris: std::collections::HashSet<&str> =
        res.hits.iter().map(|h| h.doc_uri.as_str()).collect();
    assert_eq!(uris.len(), 8, "all racing commits visible: {uris:?}");
}
