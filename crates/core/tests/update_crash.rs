//! Crash-injection acceptance for the durable update pipeline: a process
//! kill at ANY step of a commit or compaction must reopen to the last
//! *published* snapshot — the one a concurrent reader could have pinned —
//! never to a half-written state. Accepted-but-unpublished mutations are
//! not lost either: the write-ahead log replays them back into the
//! staged set on reopen (sub-commit durability).
//!
//! The injection points model the real failure windows:
//!
//! - `DuringSegmentBuild` — died mid-seal, segment directory half-written;
//! - `AfterSegmentSeal` — segment durable, manifest not yet written;
//! - `AfterManifestWrite` — manifest durable, `CURRENT` swap never landed
//!   (the subtle one: the new manifest exists on disk but was never
//!   published, so recovery must ignore it);
//! - `AfterPublish` — died after the swap: the NEW snapshot is the
//!   published one and must be what reopening finds.

use std::collections::HashSet;
use std::path::Path;
use xrank_core::{
    CrashPoint, EngineBuilder, EngineConfig, SearchResults, UpdatableXRank, UpdateError,
};

/// Figure 1 / Section 4.2.2: the `<title>` contains only 'XQL', the
/// `<abstract>` only 'language', the `<subsection>` both.
const WORKED_EXAMPLE: &str = r#"<workshop>
  <wtitle>XML and IR a Workshop</wtitle>
  <proceedings>
    <paper>
      <title>XQL and Proximal Nodes</title>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section>
          <subsection>At first sight the XQL query language looks</subsection>
        </section>
      </body>
    </paper>
  </proceedings>
</workshop>"#;

const CRASH_POINTS: [CrashPoint; 4] = [
    CrashPoint::DuringSegmentBuild,
    CrashPoint::AfterSegmentSeal,
    CrashPoint::AfterManifestWrite,
    CrashPoint::AfterPublish,
];

fn doc(word: &str) -> String {
    format!("<doc><title>{word} item</title><body>shared corpus text about {word}</body></doc>")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("xrank-crash-{tag}-{pid}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_identical(a: &SearchResults, b: &SearchResults, what: &str) {
    assert_eq!(a.hits.len(), b.hits.len(), "{what}: result count");
    for (x, y) in a.hits.iter().zip(&b.hits) {
        assert_eq!(x.dewey, y.dewey, "{what}: dewey");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{what}: score bytes");
        assert_eq!(x.path, y.path, "{what}: path");
        assert_eq!(x.snippet, y.snippet, "{what}: snippet");
    }
}

fn uris(e: &UpdatableXRank, query: &str) -> HashSet<String> {
    e.search(query, 32)
        .unwrap()
        .hits
        .into_iter()
        .map(|h| h.doc_uri)
        .collect()
}

#[test]
fn crash_at_every_point_during_commit_recovers_published_state() {
    for (i, point) in CRASH_POINTS.iter().enumerate() {
        let dir = tmp_dir(&format!("commit-{i}"));
        {
            let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
            e.add_xml("a", &doc("alpha")).unwrap();
            e.commit().unwrap();

            e.add_xml("b", &doc("beta")).unwrap();
            e.inject_crash(*point);
            match e.commit() {
                Err(UpdateError::InjectedCrash(at)) => assert_eq!(at, *point),
                other => panic!("{point:?}: expected injected crash, got {other:?}"),
            }
        } // "kill": drop without further writes

        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        let found = uris(&e, "shared corpus");
        match point {
            // Crash after the CURRENT swap: the commit WAS published.
            CrashPoint::AfterPublish => {
                assert_eq!(e.doc_count(), 2, "{point:?}");
                assert!(found.contains("a") && found.contains("b"), "{point:?}: {found:?}");
            }
            // Everything earlier: the *published* state lands on the
            // previous publish, even when a newer sealed segment or
            // manifest is on disk — but the accepted add of "b" survives
            // via WAL replay into the staged set (counted, not yet
            // searchable).
            _ => {
                assert_eq!(e.doc_count(), 2, "{point:?}: published a + replayed staged b");
                assert_eq!(e.staged_count(), 1, "{point:?}");
                assert!(found.contains("a") && !found.contains("b"), "{point:?}: {found:?}");
            }
        }
        // The reopened pipeline accepts new writes: counters were advanced
        // past every stranded file, so nothing gets shadowed. The next
        // commit also publishes the replayed "b" — the acked add survived
        // the crash end-to-end.
        e.add_xml("c", &doc("gamma")).unwrap();
        e.commit().unwrap();
        let after = uris(&e, "shared corpus");
        assert!(after.contains("c"), "{point:?}: post-recovery commit: {after:?}");
        assert!(after.contains("b"), "{point:?}: acked add durable: {after:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn crash_at_every_point_during_compaction_recovers_published_state() {
    for (i, point) in CRASH_POINTS.iter().enumerate() {
        let dir = tmp_dir(&format!("compact-{i}"));
        {
            let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
            e.add_xml("a", &doc("alpha")).unwrap();
            e.commit().unwrap();
            e.add_xml("b", &doc("beta")).unwrap();
            e.commit().unwrap();
            e.delete("a").unwrap();

            e.inject_crash(*point);
            match e.compact() {
                Err(UpdateError::InjectedCrash(at)) => assert_eq!(at, *point),
                other => panic!("{point:?}: expected injected crash, got {other:?}"),
            }
        }

        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        let found = uris(&e, "shared corpus");
        assert!(!found.contains("a"), "{point:?}: tombstone must survive recovery");
        assert!(found.contains("b"), "{point:?}: {found:?}");
        match point {
            CrashPoint::AfterPublish => {
                assert_eq!(e.segment_count(), 1, "{point:?}: fold was published");
                assert_eq!(e.tombstone_count(), 0, "{point:?}");
            }
            _ => {
                assert_eq!(e.segment_count(), 2, "{point:?}: fold must not be visible");
                assert_eq!(e.tombstone_count(), 1, "{point:?}");
            }
        }
        // Compaction still works after recovery.
        e.compact().unwrap();
        assert_eq!(e.segment_count(), 1, "{point:?}");
        assert_eq!(e.tombstone_count(), 0, "{point:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn recovered_worked_example_serves_bit_identical_rankings() {
    // Commit the Section 4.2.2 corpus, crash in the middle of a follow-up
    // commit AND a follow-up compaction, reopen — and the recovered
    // pipeline must serve the worked example bit-identically to a
    // from-scratch build of the same live document set.
    let dir = tmp_dir("worked");
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.add_xml("workshop", WORKED_EXAMPLE).unwrap();
        e.add_xml("other", &doc("unrelated")).unwrap();
        e.commit().unwrap();

        e.add_xml("doomed", &doc("doomed")).unwrap();
        e.inject_crash(CrashPoint::AfterManifestWrite);
        assert!(matches!(e.commit(), Err(UpdateError::InjectedCrash(_))));
    }
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.inject_crash(CrashPoint::AfterSegmentSeal);
        assert!(matches!(e.compact(), Err(UpdateError::InjectedCrash(_))));
    }

    let recovered = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    assert!(
        seg_dirs_on_disk(&dir) >= recovered.segment_count(),
        "every live segment is on disk (plus at most the recovery fallback's)"
    );
    assert_eq!(recovered.doc_count(), 3, "2 published + WAL-replayed staged 'doomed'");
    assert_eq!(recovered.staged_count(), 1);
    assert!(uris(&recovered, "doomed").is_empty(), "replayed doc staged, not searchable");

    // Segments hold documents in URI order, so the from-scratch reference
    // must ingest in that order for dewey assignment to line up.
    let mut b = EngineBuilder::new();
    b.add_xml("other", &doc("unrelated")).unwrap();
    b.add_xml("workshop", WORKED_EXAMPLE).unwrap();
    let reference = b.build();

    // Section 4.2.2 semantics: <subsection> (most specific) and <paper>
    // (independent occurrences in <title> and <abstract>), NOT <section>.
    let got = recovered.search("xql language", 10).unwrap();
    let names: Vec<&str> =
        got.hits.iter().filter_map(|h| h.path.last().map(String::as_str)).collect();
    assert!(names.contains(&"subsection"), "most specific result in {names:?}");
    assert!(names.contains(&"paper"), "independent occurrences in {names:?}");
    assert!(!names.contains(&"section"), "spurious ancestor in {names:?}");

    let want = reference.search("xql language", 10).unwrap();
    assert_identical(&got, &want, "worked example after crash recovery");
}

/// Counts `seg-*` directories actually on disk under `dir`.
fn seg_dirs_on_disk(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .count()
}

#[test]
fn corrupt_current_falls_back_to_newest_valid_manifest() {
    let dir = tmp_dir("corrupt-current");
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.add_xml("a", &doc("alpha")).unwrap();
        e.commit().unwrap();
    }
    std::fs::write(dir.join("CURRENT"), b"garbage\n").unwrap();
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    assert_eq!(e.doc_count(), 1, "manifest scan fallback");
    assert!(uris(&e, "alpha").contains("a"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_manifest_body_is_rejected_not_half_loaded() {
    let dir = tmp_dir("corrupt-manifest");
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        e.add_xml("a", &doc("alpha")).unwrap();
        e.commit().unwrap();
        e.add_xml("b", &doc("beta")).unwrap();
        e.commit().unwrap();
    }
    // Flip one byte in the newest manifest: its CRC no longer matches, so
    // recovery must fall back to the older one rather than trust it.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("MANIFEST-"))
        .max()
        .unwrap();
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&newest, bytes).unwrap();
    // CURRENT points at the corrupt manifest — both layers damaged.
    std::fs::write(dir.join("CURRENT"), b"garbage\n").unwrap();

    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    assert_eq!(e.doc_count(), 1, "fell back past the corrupt manifest");
    assert!(uris(&e, "alpha").contains("a"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fresh_directory_opens_empty_and_round_trips() {
    let dir = tmp_dir("fresh");
    {
        let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
        assert_eq!(e.doc_count(), 0);
        assert!(e.search("anything", 5).unwrap().hits.is_empty());
        e.add_xml("a", &doc("alpha")).unwrap();
        e.add_html("page", "<html><body>an html page about alpha</body></html>").unwrap();
        e.commit().unwrap();
    }
    let e = UpdatableXRank::open(&dir, EngineConfig::default()).unwrap();
    assert_eq!(e.doc_count(), 2);
    let found = uris(&e, "alpha");
    assert!(found.contains("a") && found.contains("page"), "{found:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
