//! Build → persist → reopen round-trip tests.

use xrank_core::{EngineBuilder, EngineConfig, Strategy, XRankEngine};
use xrank_query::QueryOptions;
use xrank_storage::FileStore;

const CORPUS: &[(&str, &str)] = &[
    (
        "w1",
        "<workshop><paper id=\"1\"><title>XQL and Proximal Nodes</title>\
         <body>the XQL query language looks</body><cite href=\"w2\">x</cite></paper></workshop>",
    ),
    ("w2", "<paper><title>Querying XML in Xyleme language</title></paper>"),
    ("w3", "<note><text>unrelated content here</text></note>"),
];

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xrank-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_persistent(dir: &std::path::Path, with_extras: bool) -> XRankEngine<FileStore> {
    let mut b = EngineBuilder::with_config(EngineConfig {
        with_rdil: with_extras,
        with_naive: with_extras,
        ..Default::default()
    });
    for (uri, xml) in CORPUS {
        b.add_xml(uri, xml).unwrap();
    }
    b.add_html("page", "<html><body>xql on the web</body></html>");
    b.build_persistent(dir).unwrap()
}

#[test]
fn reopened_engine_returns_identical_results() {
    let dir = tempdir("basic");
    let built = build_persistent(&dir, false);
    let before = built.search("xql language", 10).unwrap();
    assert!(!before.hits.is_empty());
    drop(built);

    let reopened = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    let after = reopened.search("xql language", 10).unwrap();
    assert_eq!(before.hits.len(), after.hits.len());
    for (a, b) in before.hits.iter().zip(after.hits.iter()) {
        assert_eq!(a.dewey, b.dewey);
        assert!((a.score - b.score).abs() < 1e-12);
        assert_eq!(a.path, b.path);
        assert_eq!(a.snippet, b.snippet);
        assert_eq!(a.doc_uri, b.doc_uri);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn all_strategies_survive_reopen() {
    let dir = tempdir("strategies");
    drop(build_persistent(&dir, true));
    let e = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    let opts = QueryOptions { top_m: 10, ..Default::default() };
    let dil = e.search_with("xql language", Strategy::Dil, &opts).unwrap();
    for strategy in [Strategy::Rdil, Strategy::Hdil, Strategy::NaiveId, Strategy::NaiveRank] {
        let res = e.search_with("xql language", strategy, &opts).unwrap();
        assert!(
            !res.hits.is_empty(),
            "strategy {strategy:?} returned nothing after reopen"
        );
        if matches!(strategy, Strategy::Rdil | Strategy::Hdil) {
            assert_eq!(res.hits.len(), dil.hits.len());
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn html_mode_survives_reopen() {
    let dir = tempdir("html");
    drop(build_persistent(&dir, false));
    let e = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    let res = e.search("web", 10).unwrap();
    assert_eq!(res.hits.len(), 1);
    assert_eq!(res.hits[0].doc_uri, "page");
    assert_eq!(res.hits[0].path.len(), 1, "HTML pages stay whole documents");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn elem_ranks_survive_reopen() {
    let dir = tempdir("ranks");
    let built = build_persistent(&dir, false);
    let n = built.collection().element_count();
    let expected: Vec<f64> = (0..n as u32).map(|i| built.elem_rank_of(i)).collect();
    drop(built);
    let e = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    assert!(e.rank_result().converged);
    for (i, &x) in expected.iter().enumerate() {
        assert_eq!(e.elem_rank_of(i as u32), x);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_meta_is_rejected() {
    let dir = tempdir("corrupt");
    drop(build_persistent(&dir, false));
    let meta = dir.join("store").join("xrank-meta.bin");
    let mut bytes = std::fs::read(&meta).unwrap();
    bytes[0] = b'Z';
    std::fs::write(&meta, &bytes).unwrap();
    assert!(XRankEngine::open(&dir, EngineConfig::default()).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_directory_is_a_clean_error() {
    let err = XRankEngine::open("/nonexistent/xrank-zzz", EngineConfig::default());
    assert!(err.is_err());
}

// --- Fault-tolerance validation (PR 3) -------------------------------------

#[test]
fn truncated_meta_is_rejected() {
    let dir = tempdir("truncmeta");
    drop(build_persistent(&dir, false));
    let meta = dir.join("store").join("xrank-meta.bin");
    let bytes = std::fs::read(&meta).unwrap();
    std::fs::write(&meta, &bytes[..bytes.len() / 2]).unwrap();
    let err = XRankEngine::open(&dir, EngineConfig::default());
    assert!(err.is_err(), "truncated meta must not open");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn future_version_is_rejected_with_descriptive_error() {
    let dir = tempdir("futurever");
    drop(build_persistent(&dir, false));
    let meta = dir.join("store").join("xrank-meta.bin");
    let mut bytes = std::fs::read(&meta).unwrap();
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes()); // version after magic
    std::fs::write(&meta, &bytes).unwrap();
    let err = XRankEngine::open(&dir, EngineConfig::default()).err().expect("must fail");
    let msg = err.to_string();
    assert!(msg.contains("version") && msg.contains("99"), "undescriptive error: {msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_segment_fails_open() {
    let dir = tempdir("bitflip");
    drop(build_persistent(&dir, false));
    let seg = dir.join("store").join("seg-0.pages");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&seg, &bytes).unwrap();
    let err = XRankEngine::open(&dir, EngineConfig::default());
    assert!(err.is_err(), "checksum verification must reject a flipped bit");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fresh_save_over_damaged_dir_succeeds() {
    let dir = tempdir("resave");
    drop(build_persistent(&dir, false));
    // Damage both the meta and a segment.
    let meta = dir.join("store").join("xrank-meta.bin");
    let mut bytes = std::fs::read(&meta).unwrap();
    bytes[0] = b'Z';
    std::fs::write(&meta, &bytes).unwrap();
    let seg = dir.join("store").join("seg-0.pages");
    std::fs::write(&seg, b"garbage").unwrap();
    assert!(XRankEngine::open(&dir, EngineConfig::default()).is_err());

    // A fresh save over the damaged directory fully replaces it.
    drop(build_persistent(&dir, false));
    let e = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    assert!(!e.search("xql language", 10).unwrap().hits.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_between_save_and_rename_leaves_previous_index_openable() {
    let dir = tempdir("crashsim");
    let built = build_persistent(&dir, false);
    let expected = built.search("xql language", 10).unwrap();
    drop(built);

    // Crash state A: a later save died while still writing store.tmp
    // (incomplete staging dir beside the intact live store).
    let tmp = dir.join("store.tmp");
    std::fs::create_dir_all(&tmp).unwrap();
    std::fs::write(tmp.join("seg-0.pages"), b"half-written").unwrap();
    let e = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    assert_eq!(e.search("xql language", 10).unwrap().hits.len(), expected.hits.len());
    drop(e);

    // Crash state B: killed between the two commit renames — the previous
    // index sits at store.old, there is no live store yet.
    std::fs::rename(dir.join("store"), dir.join("store.old")).unwrap();
    let e = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    let got = e.search("xql language", 10).unwrap();
    assert_eq!(got.hits.len(), expected.hits.len());
    for (a, b) in expected.hits.iter().zip(got.hits.iter()) {
        assert_eq!(a.dewey, b.dewey);
    }
    drop(e);

    // Recovery by a fresh save cleans up all crash debris.
    drop(build_persistent(&dir, false));
    assert!(!dir.join("store.tmp").exists(), "staging dir must be consumed");
    let e = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    assert!(!e.search("xql language", 10).unwrap().hits.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn legacy_v1_layout_still_opens() {
    let dir = tempdir("legacy");
    drop(build_persistent(&dir, false));
    // Reshape into the pre-crash-safety layout: meta beside the store dir.
    std::fs::rename(
        dir.join("store").join("xrank-meta.bin"),
        dir.join("xrank-meta.bin"),
    )
    .unwrap();
    let e = XRankEngine::open(&dir, EngineConfig::default()).unwrap();
    assert!(!e.search("xql language", 10).unwrap().hits.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
