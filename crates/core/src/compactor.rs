//! Background merge/compaction for the update pipeline.
//!
//! A [`Compactor`] owns one worker thread that periodically (or when
//! [`Compactor::nudge`]d) checks the pipeline's published snapshot and,
//! when commits have accumulated more than
//! [`CompactionPolicy::max_segments`] segments, folds the small ones
//! together through [`crate::UpdatableXRank::merge_small`] — dropping
//! tombstoned postings, re-resolving cross-segment hyperlinks, and
//! warm-starting ElemRank from the folded segments' rank vectors.
//!
//! The plumbing mirrors the [`crate::QueryExecutor`] worker pool:
//! shutdown cancels a shared [`CancelToken`] (observed by an in-flight
//! fold at its phase boundaries — a cancelled fold publishes nothing),
//! wakes the worker, and joins it. The worker holds only a `Weak`
//! reference to the pipeline, so dropping the last user `Arc` also ends
//! the thread at its next wake-up.
//!
//! The worker thread is named `xrank-compactor`, so every fold it runs
//! lands on its own track in flight-recorder trace dumps
//! ([`crate::UpdatableXRank::dump_trace_json`]); the fold itself records
//! its trace into the pipeline's [`crate::FlightRecorder`], nothing extra
//! is needed here.

use crate::update::{UpdatableXRank, UpdateError};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;
use xrank_query::CancelToken;

/// When and what the background compactor folds.
#[derive(Debug, Clone)]
pub struct CompactionPolicy {
    /// Fold when the published snapshot holds more than this many
    /// segments.
    pub max_segments: usize,
    /// Only segments of at most this many source bytes are folded; big
    /// sealed segments stay untouched until a full
    /// [`crate::UpdatableXRank::compact`].
    pub small_bytes: u64,
    /// How often the worker re-checks without a nudge.
    pub interval: Duration,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_segments: 4,
            small_bytes: 8 << 20,
            interval: Duration::from_millis(500),
        }
    }
}

struct Shared {
    cancel: CancelToken,
    nudged: Mutex<bool>,
    cv: Condvar,
}

/// Handle to the background compaction worker. Dropping it (or calling
/// [`Compactor::shutdown`]) cancels any in-flight fold at its next phase
/// boundary and joins the thread.
pub struct Compactor {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawns the worker against `index` under `policy`.
    pub fn spawn(index: &Arc<UpdatableXRank>, policy: CompactionPolicy) -> Compactor {
        let shared = Arc::new(Shared {
            cancel: CancelToken::new(),
            nudged: Mutex::new(false),
            cv: Condvar::new(),
        });
        let weak: Weak<UpdatableXRank> = Arc::downgrade(index);
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("xrank-compactor".into())
            .spawn(move || Self::worker_loop(weak, policy, worker_shared))
            .expect("spawn compactor worker");
        Compactor { shared, handle: Some(handle) }
    }

    fn worker_loop(weak: Weak<UpdatableXRank>, policy: CompactionPolicy, shared: Arc<Shared>) {
        loop {
            {
                let guard = shared.nudged.lock().unwrap_or_else(|e| e.into_inner());
                let (mut guard, _) = shared
                    .cv
                    .wait_timeout_while(guard, policy.interval, |nudged| {
                        !*nudged && !shared.cancel.is_cancelled()
                    })
                    .unwrap_or_else(|e| e.into_inner());
                *guard = false;
            }
            if shared.cancel.is_cancelled() {
                return;
            }
            let Some(index) = weak.upgrade() else { return };
            if index.segment_count() > policy.max_segments {
                match index.merge_small(policy.small_bytes, Some(&shared.cancel)) {
                    Ok(_) => {}
                    Err(UpdateError::Cancelled) => return,
                    // Fold failures are counted by the pipeline's
                    // compaction-failure counter; the worker keeps
                    // serving — one bad fold must not end compaction
                    // forever.
                    Err(_) => {}
                }
            }
        }
    }

    /// Wakes the worker now instead of waiting out the poll interval.
    pub fn nudge(&self) {
        let mut nudged = self.shared.nudged.lock().unwrap_or_else(|e| e.into_inner());
        *nudged = true;
        self.shared.cv.notify_all();
    }

    /// Cancels any in-flight fold (observed at its phase boundaries — a
    /// cancelled fold publishes nothing) and joins the worker. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.cancel.cancel();
        self.nudge();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}
