//! Multi-threaded query serving over one shared engine.
//!
//! [`QueryExecutor`] is a closed-loop worker pool: N `std::thread` workers
//! pull [`QueryRequest`]s off one bounded queue and run them through
//! [`XRankEngine::query`] on the *same* engine instance — the sharded
//! buffer pool and `&self` query path are what make that sound. The
//! bounded queue gives submission backpressure: [`QueryExecutor::submit`]
//! blocks once `queue_depth` requests are waiting, so a load generator
//! naturally runs closed-loop at the service rate instead of building an
//! unbounded backlog.

use crate::engine::{Strategy, XRankEngine};
use crate::results::SearchResults;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use xrank_query::QueryOptions;
use xrank_storage::PageStore;

/// One unit of work for the executor.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Raw query string (tokenized by the engine).
    pub query: String,
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Options; `None` uses the engine's configured defaults.
    pub opts: Option<QueryOptions>,
}

impl QueryRequest {
    /// A request with engine-default options.
    pub fn new(query: impl Into<String>, strategy: Strategy) -> Self {
        QueryRequest { query: query.into(), strategy, opts: None }
    }
}

struct Task {
    request: QueryRequest,
    reply: Sender<SearchResults>,
}

/// A fixed pool of worker threads serving queries from a bounded queue
/// against one shared [`XRankEngine`].
///
/// Dropping the executor closes the queue and joins the workers after they
/// drain the remaining requests.
pub struct QueryExecutor {
    tx: Option<SyncSender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryExecutor {
    /// Spawns `workers` threads (minimum 1) over `engine`, with room for
    /// `queue_depth` requests (minimum 1) waiting between submission and
    /// execution.
    pub fn new<S>(engine: Arc<XRankEngine<S>>, workers: usize, queue_depth: usize) -> Self
    where
        S: PageStore + Send + Sync + 'static,
    {
        let (tx, rx) = sync_channel::<Task>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&engine, &rx))
            })
            .collect();
        QueryExecutor { tx: Some(tx), workers }
    }

    /// Enqueues a request, blocking while the queue is full. The returned
    /// channel yields the result when a worker finishes it.
    pub fn submit(&self, request: QueryRequest) -> Receiver<SearchResults> {
        let (reply, result) = std::sync::mpsc::channel();
        self.tx
            .as_ref()
            .expect("executor alive")
            .send(Task { request, reply })
            .expect("workers alive");
        result
    }

    /// Runs a request to completion on a worker (blocking convenience
    /// wrapper around [`QueryExecutor::submit`]).
    pub fn execute(&self, request: QueryRequest) -> SearchResults {
        self.submit(request).recv().expect("worker completes the request")
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for QueryExecutor {
    fn drop(&mut self) {
        drop(self.tx.take()); // closes the queue; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop<S: PageStore>(
    engine: &XRankEngine<S>,
    rx: &Mutex<Receiver<Task>>,
) {
    loop {
        // Hold the lock only to dequeue, never while evaluating.
        let task = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let Ok(Task { request, reply }) = task else { return };
        let opts = request
            .opts
            .unwrap_or_else(|| engine.config().query.clone());
        let results = engine.query(&request.query, request.strategy, &opts);
        // The submitter may have dropped the receiver; that's fine.
        let _ = reply.send(results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;

    fn small_engine() -> Arc<XRankEngine> {
        let mut b = EngineBuilder::new();
        for i in 0..20 {
            b.add_xml(
                &format!("doc{i}"),
                &format!("<r><a>shared words {i}</a><b>shared extra</b></r>"),
            )
            .unwrap();
        }
        Arc::new(b.build())
    }

    #[test]
    fn executes_queries_on_workers() {
        let engine = small_engine();
        let exec = QueryExecutor::new(Arc::clone(&engine), 2, 4);
        assert_eq!(exec.worker_count(), 2);
        let direct = engine.query(
            "shared words",
            Strategy::Hdil,
            &engine.config().query,
        );
        let pooled = exec.execute(QueryRequest::new("shared words", Strategy::Hdil));
        assert_eq!(direct.hits.len(), pooled.hits.len());
        for (a, b) in direct.hits.iter().zip(&pooled.hits) {
            assert_eq!(a.dewey, b.dewey);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn many_concurrent_submissions_drain() {
        let engine = small_engine();
        let exec = QueryExecutor::new(engine, 4, 2);
        let pending: Vec<_> = (0..64)
            .map(|i| {
                let q = if i % 2 == 0 { "shared words" } else { "shared extra" };
                exec.submit(QueryRequest::new(q, Strategy::Dil))
            })
            .collect();
        for (i, rx) in pending.into_iter().enumerate() {
            let r = rx.recv().expect("completed");
            assert!(!r.hits.is_empty(), "request {i} returned no hits");
        }
    }
}
