//! Multi-threaded query serving over one shared engine.
//!
//! [`QueryExecutor`] is a closed-loop worker pool: N `std::thread` workers
//! pull [`QueryRequest`]s off one bounded queue and run them through
//! [`XRankEngine::query`] on the *same* engine instance — the sharded
//! buffer pool and `&self` query path are what make that sound. The
//! bounded queue gives submission backpressure: [`QueryExecutor::submit`]
//! blocks once `queue_depth` requests are waiting, so a load generator
//! naturally runs closed-loop at the service rate instead of building an
//! unbounded backlog.
//!
//! Overload protection: an [`AdmissionPolicy`] decides what a full queue
//! means — [`AdmissionPolicy::Shed`] rejects immediately with typed
//! [`QueryError::Overloaded`] (the load-shedding posture: a fast *no*
//! beats a slow *yes* under saturation), while [`AdmissionPolicy::Block`]
//! waits, optionally up to a submission deadline. [`QueryExecutor::try_submit`]
//! is the never-blocking entry point regardless of policy. Shutdown flags
//! a shared [`CancelToken`] that in-flight queries observe at their loop
//! boundaries, so it cannot hang on a long-running evaluation.

use crate::engine::{Strategy, XRankEngine};
use crate::results::SearchResults;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xrank_obs::{Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, OpKind};
use xrank_query::{CancelToken, QueryError, QueryOptions};
use xrank_storage::PageStore;

/// What a worker sends back for one request: the results, or the typed
/// reason the evaluation failed (storage fault, deadline, shutdown).
pub type QueryReply = Result<SearchResults, QueryError>;

/// One unit of work for the executor.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Raw query string (tokenized by the engine).
    pub query: String,
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Options; `None` uses the engine's configured defaults.
    pub opts: Option<QueryOptions>,
}

impl QueryRequest {
    /// A request with engine-default options.
    pub fn new(query: impl Into<String>, strategy: Strategy) -> Self {
        QueryRequest { query: query.into(), strategy, opts: None }
    }
}

/// What [`QueryExecutor::submit`] does when the bounded queue is full.
///
/// The default, `Block { submission_timeout: None }`, preserves the
/// original closed-loop backpressure: submitters wait indefinitely for a
/// slot. `Shed` turns the executor into a load-shedding server — a full
/// queue yields an immediate typed [`QueryError::Overloaded`] so the
/// caller can retry elsewhere instead of piling onto a saturated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Wait for a queue slot; with `Some(timeout)`, give up and return
    /// [`QueryError::Overloaded`] once the submission deadline passes.
    #[default]
    Block,
    /// Like [`AdmissionPolicy::Block`] but bounded: waiting longer than
    /// the given duration for a queue slot sheds the request.
    BlockWithDeadline(Duration),
    /// Reject immediately when the queue is full.
    Shed,
}

struct Task {
    request: QueryRequest,
    reply: Sender<QueryReply>,
    /// Submission time, for the queue-wait histogram.
    submitted: Instant,
}

/// Handles the executor records through, resolved once from the engine's
/// registry (shared — executor metrics land next to the engine's own).
#[derive(Clone)]
struct ExecMetrics {
    queue_depth: Gauge,
    in_flight: Gauge,
    wall_us: Histogram,
    queue_wait_us: Histogram,
    err_storage: Counter,
    err_timeout: Counter,
    err_unavailable: Counter,
    err_overloaded: Counter,
    err_budget: Counter,
    /// Requests rejected at admission (queue full under `Shed`, or a
    /// `BlockWithDeadline` submission that timed out).
    sheds: Counter,
}

impl ExecMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ExecMetrics {
            queue_depth: registry.gauge("xrank_executor_queue_depth"),
            in_flight: registry.gauge("xrank_executor_in_flight"),
            wall_us: registry.latency_histogram_us("xrank_executor_wall_us"),
            queue_wait_us: registry.latency_histogram_us("xrank_executor_queue_wait_us"),
            err_storage: registry.counter("xrank_executor_errors_total{kind=\"storage\"}"),
            err_timeout: registry.counter("xrank_executor_errors_total{kind=\"timeout\"}"),
            err_unavailable: registry.counter("xrank_executor_errors_total{kind=\"unavailable\"}"),
            err_overloaded: registry.counter("xrank_executor_errors_total{kind=\"overloaded\"}"),
            err_budget: registry.counter("xrank_executor_errors_total{kind=\"budget\"}"),
            sheds: registry.counter("xrank_executor_sheds_total"),
        }
    }

    fn record_error(&self, err: &QueryError) {
        match err {
            QueryError::Storage(_) => self.err_storage.inc(),
            QueryError::Timeout => self.err_timeout.inc(),
            QueryError::Unavailable(_) => self.err_unavailable.inc(),
            QueryError::Overloaded => self.err_overloaded.inc(),
            QueryError::BudgetExhausted => self.err_budget.inc(),
        }
    }
}

/// A fixed pool of worker threads serving queries from a bounded queue
/// against one shared [`XRankEngine`].
///
/// [`QueryExecutor::shutdown`] flags a shared cancel token (observed by
/// in-flight queries at their evaluation loop boundaries, so shutdown
/// cannot hang on a long-running query), then closes the queue and joins
/// the workers — accepted work always gets a *reply*, though under
/// explicit shutdown that reply may be `Err(Unavailable)`. Dropping the
/// executor instead drains gracefully without cancelling.
pub struct QueryExecutor {
    tx: Option<SyncSender<Task>>,
    workers: Vec<JoinHandle<()>>,
    metrics: ExecMetrics,
    policy: AdmissionPolicy,
    /// Shared shutdown signal, cloned into every query that does not carry
    /// its own cancel token.
    shutdown: CancelToken,
    /// The engine's flight recorder: shed decisions land on the timeline
    /// as instant events next to the queries they displaced.
    recorder: Arc<FlightRecorder>,
}

impl QueryExecutor {
    /// Spawns `workers` threads (minimum 1) over `engine`, with room for
    /// `queue_depth` requests (minimum 1) waiting between submission and
    /// execution. Serving metrics (queue depth, in-flight count, wall and
    /// queue-wait latency histograms, per-kind error counters) are
    /// recorded into the engine's [`XRankEngine::metrics`] registry.
    pub fn new<S>(engine: Arc<XRankEngine<S>>, workers: usize, queue_depth: usize) -> Self
    where
        S: PageStore + Send + Sync + 'static,
    {
        Self::with_policy(engine, workers, queue_depth, AdmissionPolicy::default())
    }

    /// [`QueryExecutor::new`] with an explicit [`AdmissionPolicy`]
    /// governing what a full queue means for [`QueryExecutor::submit`].
    pub fn with_policy<S>(
        engine: Arc<XRankEngine<S>>,
        workers: usize,
        queue_depth: usize,
        policy: AdmissionPolicy,
    ) -> Self
    where
        S: PageStore + Send + Sync + 'static,
    {
        let metrics = ExecMetrics::new(engine.metrics());
        let recorder = Arc::clone(engine.recorder());
        let shutdown = CancelToken::new();
        let (tx, rx) = sync_channel::<Task>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let engine = Arc::clone(&engine);
                let rx = Arc::clone(&rx);
                let metrics = metrics.clone();
                let shutdown = shutdown.clone();
                // Named so each worker gets its own track in trace dumps.
                std::thread::Builder::new()
                    .name(format!("xrank-worker-{i}"))
                    .spawn(move || worker_loop(&engine, &rx, &metrics, &shutdown))
                    .expect("spawn query worker")
            })
            .collect();
        QueryExecutor { tx: Some(tx), workers, metrics, policy, shutdown, recorder }
    }

    /// The admission policy this executor was built with.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Enqueues a request according to the executor's [`AdmissionPolicy`]:
    /// `Block` waits for a slot, `BlockWithDeadline` waits up to the
    /// submission deadline, `Shed` never waits. The returned channel
    /// yields the reply when a worker finishes it. Fails with
    /// [`QueryError::Overloaded`] when admission is denied, and with
    /// [`QueryError::Unavailable`] instead of panicking if the executor
    /// has shut down or every worker has exited.
    pub fn submit(&self, request: QueryRequest) -> Result<Receiver<QueryReply>, QueryError> {
        match self.policy {
            AdmissionPolicy::Block => self.submit_blocking(request),
            AdmissionPolicy::BlockWithDeadline(timeout) => {
                self.submit_with_deadline(request, timeout)
            }
            AdmissionPolicy::Shed => self.try_submit(request),
        }
    }

    /// Never-blocking admission, regardless of policy: a full queue is an
    /// immediate typed [`QueryError::Overloaded`].
    pub fn try_submit(&self, request: QueryRequest) -> Result<Receiver<QueryReply>, QueryError> {
        let (reply, result) = std::sync::mpsc::channel();
        let tx = self
            .tx
            .as_ref()
            .ok_or(QueryError::Unavailable("executor is shut down"))?;
        match tx.try_send(Task { request, reply, submitted: Instant::now() }) {
            Ok(()) => {
                self.metrics.queue_depth.add(1);
                Ok(result)
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.sheds.inc();
                self.metrics.record_error(&QueryError::Overloaded);
                self.recorder.instant(OpKind::Shed, "shed: queue full");
                Err(QueryError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                Err(QueryError::Unavailable("executor workers exited"))
            }
        }
    }

    fn submit_blocking(&self, request: QueryRequest) -> Result<Receiver<QueryReply>, QueryError> {
        let (reply, result) = std::sync::mpsc::channel();
        let tx = self
            .tx
            .as_ref()
            .ok_or(QueryError::Unavailable("executor is shut down"))?;
        tx.send(Task { request, reply, submitted: Instant::now() })
            .map_err(|_| QueryError::Unavailable("executor workers exited"))?;
        self.metrics.queue_depth.add(1);
        Ok(result)
    }

    /// Block-with-deadline admission. `std::sync::mpsc` has no
    /// `send_timeout`, so this polls `try_send` with a short sleep; the
    /// task is handed back through [`TrySendError::Full`] on every failed
    /// attempt, so no work is cloned or lost while waiting.
    fn submit_with_deadline(
        &self,
        request: QueryRequest,
        timeout: Duration,
    ) -> Result<Receiver<QueryReply>, QueryError> {
        let (reply, result) = std::sync::mpsc::channel();
        let tx = self
            .tx
            .as_ref()
            .ok_or(QueryError::Unavailable("executor is shut down"))?;
        let deadline = Instant::now() + timeout;
        let mut task = Task { request, reply, submitted: Instant::now() };
        loop {
            match tx.try_send(task) {
                Ok(()) => {
                    self.metrics.queue_depth.add(1);
                    return Ok(result);
                }
                Err(TrySendError::Full(t)) => {
                    if Instant::now() >= deadline {
                        self.metrics.sheds.inc();
                        self.metrics.record_error(&QueryError::Overloaded);
                        self.recorder.instant(OpKind::Shed, "shed: submission deadline");
                        return Err(QueryError::Overloaded);
                    }
                    task = t;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(QueryError::Unavailable("executor workers exited"));
                }
            }
        }
    }

    /// Runs a request to completion on a worker (blocking convenience
    /// wrapper around [`QueryExecutor::submit`]).
    pub fn execute(&self, request: QueryRequest) -> QueryReply {
        self.submit(request)?
            .recv()
            .map_err(|_| QueryError::Unavailable("worker exited before replying"))?
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Prompt shutdown: flags the shared cancel token — in-flight queries
    /// observe it at their next evaluation loop boundary and abort with
    /// [`QueryError::Unavailable`] — then closes the queue and joins the
    /// threads. Every accepted request still gets a reply, but requests
    /// overtaken by shutdown reply `Err(Unavailable)` rather than running
    /// to completion; a long-running query can therefore never stall the
    /// shutdown. Consuming `self` makes post-shutdown submission
    /// unrepresentable. (Dropping the executor instead drains gracefully,
    /// without cancelling.)
    pub fn shutdown(mut self) {
        self.shutdown.cancel();
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        drop(self.tx.take()); // closes the queue; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryExecutor {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop<S: PageStore>(
    engine: &XRankEngine<S>,
    rx: &Mutex<Receiver<Task>>,
    metrics: &ExecMetrics,
    shutdown: &CancelToken,
) {
    loop {
        // Hold the lock only to dequeue, never while evaluating.
        let task = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let Ok(Task { request, reply, submitted }) = task else { return };
        metrics.queue_depth.sub(1);
        metrics
            .queue_wait_us
            .observe(submitted.elapsed().as_secs_f64() * 1e6);
        metrics.in_flight.add(1);
        let started = Instant::now();
        let mut opts = request
            .opts
            .unwrap_or_else(|| engine.config().query.clone());
        // Queries that did not bring their own cancel token observe the
        // executor's shutdown signal at their loop boundaries.
        if opts.cancel.is_none() {
            opts.cancel = Some(shutdown.clone());
        }
        let results = engine.query(&request.query, request.strategy, &opts);
        metrics.wall_us.observe(started.elapsed().as_secs_f64() * 1e6);
        metrics.in_flight.sub(1);
        if let Err(e) = &results {
            metrics.record_error(e);
        }

        // The submitter may have dropped the receiver; that's fine.
        let _ = reply.send(results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;

    fn small_engine() -> Arc<XRankEngine> {
        let mut b = EngineBuilder::new();
        for i in 0..20 {
            b.add_xml(
                &format!("doc{i}"),
                &format!("<r><a>shared words {i}</a><b>shared extra</b></r>"),
            )
            .unwrap();
        }
        Arc::new(b.build())
    }

    #[test]
    fn executes_queries_on_workers() {
        let engine = small_engine();
        let exec = QueryExecutor::new(Arc::clone(&engine), 2, 4);
        assert_eq!(exec.worker_count(), 2);
        let direct = engine
            .query("shared words", Strategy::Hdil, &engine.config().query)
            .unwrap();
        let pooled = exec
            .execute(QueryRequest::new("shared words", Strategy::Hdil))
            .unwrap();
        assert_eq!(direct.hits.len(), pooled.hits.len());
        for (a, b) in direct.hits.iter().zip(&pooled.hits) {
            assert_eq!(a.dewey, b.dewey);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn many_concurrent_submissions_drain() {
        let engine = small_engine();
        let exec = QueryExecutor::new(engine, 4, 2);
        let pending: Vec<_> = (0..64)
            .map(|i| {
                let q = if i % 2 == 0 { "shared words" } else { "shared extra" };
                exec.submit(QueryRequest::new(q, Strategy::Dil)).unwrap()
            })
            .collect();
        for (i, rx) in pending.into_iter().enumerate() {
            let r = rx.recv().expect("completed").unwrap();
            assert!(!r.hits.is_empty(), "request {i} returned no hits");
        }
    }

    #[test]
    fn shutdown_replies_to_every_accepted_request() {
        let engine = small_engine();
        let exec = QueryExecutor::new(engine, 2, 64);
        let pending: Vec<_> = (0..32)
            .map(|_| exec.submit(QueryRequest::new("shared words", Strategy::Hdil)).unwrap())
            .collect();
        exec.shutdown(); // flags cancel, then joins after the queue drains
        for rx in pending {
            // Shutdown is prompt, not graceful: each accepted request gets
            // either its results (if it completed before the flag was
            // observed) or a typed Unavailable — never a hang or a dropped
            // reply channel.
            match rx.recv().expect("reply delivered before shutdown returned") {
                Ok(r) => assert!(!r.hits.is_empty()),
                Err(QueryError::Unavailable(_)) => {}
                Err(e) => panic!("unexpected shutdown reply: {e:?}"),
            }
        }
    }

    #[test]
    fn drop_still_drains_gracefully() {
        let engine = small_engine();
        let exec = QueryExecutor::new(engine, 2, 64);
        let pending: Vec<_> = (0..16)
            .map(|_| exec.submit(QueryRequest::new("shared words", Strategy::Dil)).unwrap())
            .collect();
        drop(exec); // no cancel flag: accepted work runs to completion
        for rx in pending {
            let r = rx.recv().expect("reply").unwrap();
            assert!(!r.hits.is_empty());
        }
    }

    #[test]
    fn shed_policy_rejects_with_typed_overloaded() {
        let engine = small_engine();
        // One worker, queue depth 1: rapid-fire submissions must overrun
        // the queue, and under Shed the overflow is a typed error.
        let exec =
            QueryExecutor::with_policy(Arc::clone(&engine), 1, 1, AdmissionPolicy::Shed);
        let mut accepted = Vec::new();
        let mut shed = 0u32;
        for _ in 0..64 {
            match exec.submit(QueryRequest::new("shared words", Strategy::Hdil)) {
                Ok(rx) => accepted.push(rx),
                Err(QueryError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected admission error: {e:?}"),
            }
        }
        // With 64 rapid-fire submissions against worker=1/queue=1, at
        // least one must have been shed (the queue can hold only one).
        assert!(shed > 0, "expected at least one shed");
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.counter("xrank_executor_sheds_total") as u32, shed);
        assert_eq!(
            snap.counter("xrank_executor_errors_total{kind=\"overloaded\"}") as u32,
            shed
        );
        for rx in accepted {
            rx.recv().expect("accepted work still served").unwrap();
        }
    }

    #[test]
    fn block_with_deadline_sheds_after_timeout() {
        let engine = small_engine();
        let exec = QueryExecutor::with_policy(
            engine,
            1,
            1,
            AdmissionPolicy::BlockWithDeadline(Duration::from_millis(5)),
        );
        let mut shed = 0u32;
        let mut accepted = Vec::new();
        for _ in 0..32 {
            match exec.submit(QueryRequest::new("shared words", Strategy::Hdil)) {
                Ok(rx) => accepted.push(rx),
                Err(QueryError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected admission error: {e:?}"),
            }
        }
        for rx in accepted {
            rx.recv().expect("accepted work still served").unwrap();
        }
        // Submissions that were shed waited at least the 5ms deadline and
        // got the typed error; this cannot deadlock regardless of count.
        let _ = shed;
    }

    #[test]
    fn per_query_deadline_surfaces_as_timeout() {
        let engine = small_engine();
        let exec = QueryExecutor::new(engine, 1, 4);
        let opts = QueryOptions {
            timeout: Some(std::time::Duration::ZERO),
            ..QueryOptions::default()
        };
        let reply = exec.execute(QueryRequest {
            query: "shared words".into(),
            strategy: Strategy::Dil,
            opts: Some(opts),
        });
        assert!(matches!(reply, Err(QueryError::Timeout)), "got {reply:?}");
    }
}
