//! Multi-threaded query serving over one shared engine.
//!
//! [`QueryExecutor`] is a closed-loop worker pool: N `std::thread` workers
//! pull [`QueryRequest`]s off one bounded queue and run them through
//! [`XRankEngine::query`] on the *same* engine instance — the sharded
//! buffer pool and `&self` query path are what make that sound. The
//! bounded queue gives submission backpressure: [`QueryExecutor::submit`]
//! blocks once `queue_depth` requests are waiting, so a load generator
//! naturally runs closed-loop at the service rate instead of building an
//! unbounded backlog.

use crate::engine::{Strategy, XRankEngine};
use crate::results::SearchResults;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use xrank_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use xrank_query::{QueryError, QueryOptions};
use xrank_storage::PageStore;

/// What a worker sends back for one request: the results, or the typed
/// reason the evaluation failed (storage fault, deadline, shutdown).
pub type QueryReply = Result<SearchResults, QueryError>;

/// One unit of work for the executor.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Raw query string (tokenized by the engine).
    pub query: String,
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Options; `None` uses the engine's configured defaults.
    pub opts: Option<QueryOptions>,
}

impl QueryRequest {
    /// A request with engine-default options.
    pub fn new(query: impl Into<String>, strategy: Strategy) -> Self {
        QueryRequest { query: query.into(), strategy, opts: None }
    }
}

struct Task {
    request: QueryRequest,
    reply: Sender<QueryReply>,
    /// Submission time, for the queue-wait histogram.
    submitted: Instant,
}

/// Handles the executor records through, resolved once from the engine's
/// registry (shared — executor metrics land next to the engine's own).
#[derive(Clone)]
struct ExecMetrics {
    queue_depth: Gauge,
    in_flight: Gauge,
    wall_us: Histogram,
    queue_wait_us: Histogram,
    err_storage: Counter,
    err_timeout: Counter,
    err_unavailable: Counter,
}

impl ExecMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ExecMetrics {
            queue_depth: registry.gauge("xrank_executor_queue_depth"),
            in_flight: registry.gauge("xrank_executor_in_flight"),
            wall_us: registry.latency_histogram_us("xrank_executor_wall_us"),
            queue_wait_us: registry.latency_histogram_us("xrank_executor_queue_wait_us"),
            err_storage: registry.counter("xrank_executor_errors_total{kind=\"storage\"}"),
            err_timeout: registry.counter("xrank_executor_errors_total{kind=\"timeout\"}"),
            err_unavailable: registry.counter("xrank_executor_errors_total{kind=\"unavailable\"}"),
        }
    }

    fn record_error(&self, err: &QueryError) {
        match err {
            QueryError::Storage(_) => self.err_storage.inc(),
            QueryError::Timeout => self.err_timeout.inc(),
            QueryError::Unavailable(_) => self.err_unavailable.inc(),
        }
    }
}

/// A fixed pool of worker threads serving queries from a bounded queue
/// against one shared [`XRankEngine`].
///
/// [`QueryExecutor::shutdown`] (or dropping the executor) closes the
/// queue and joins the workers after they drain the remaining requests —
/// accepted work always gets a reply.
pub struct QueryExecutor {
    tx: Option<SyncSender<Task>>,
    workers: Vec<JoinHandle<()>>,
    metrics: ExecMetrics,
}

impl QueryExecutor {
    /// Spawns `workers` threads (minimum 1) over `engine`, with room for
    /// `queue_depth` requests (minimum 1) waiting between submission and
    /// execution. Serving metrics (queue depth, in-flight count, wall and
    /// queue-wait latency histograms, per-kind error counters) are
    /// recorded into the engine's [`XRankEngine::metrics`] registry.
    pub fn new<S>(engine: Arc<XRankEngine<S>>, workers: usize, queue_depth: usize) -> Self
    where
        S: PageStore + Send + Sync + 'static,
    {
        let metrics = ExecMetrics::new(engine.metrics());
        let (tx, rx) = sync_channel::<Task>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                let rx = Arc::clone(&rx);
                let metrics = metrics.clone();
                std::thread::spawn(move || worker_loop(&engine, &rx, &metrics))
            })
            .collect();
        QueryExecutor { tx: Some(tx), workers, metrics }
    }

    /// Enqueues a request, blocking while the queue is full. The returned
    /// channel yields the reply when a worker finishes it. Fails with
    /// [`QueryError::Unavailable`] instead of panicking if the executor
    /// has shut down or every worker has exited.
    pub fn submit(&self, request: QueryRequest) -> Result<Receiver<QueryReply>, QueryError> {
        let (reply, result) = std::sync::mpsc::channel();
        let tx = self
            .tx
            .as_ref()
            .ok_or(QueryError::Unavailable("executor is shut down"))?;
        tx.send(Task { request, reply, submitted: Instant::now() })
            .map_err(|_| QueryError::Unavailable("executor workers exited"))?;
        self.metrics.queue_depth.add(1);
        Ok(result)
    }

    /// Runs a request to completion on a worker (blocking convenience
    /// wrapper around [`QueryExecutor::submit`]).
    pub fn execute(&self, request: QueryRequest) -> QueryReply {
        self.submit(request)?
            .recv()
            .map_err(|_| QueryError::Unavailable("worker exited before replying"))?
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Graceful shutdown: stops accepting new work, lets the workers
    /// drain every already-submitted request (each submitter still gets
    /// its reply), and joins the threads. Consuming `self` makes
    /// post-shutdown submission unrepresentable.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        drop(self.tx.take()); // closes the queue; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryExecutor {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop<S: PageStore>(
    engine: &XRankEngine<S>,
    rx: &Mutex<Receiver<Task>>,
    metrics: &ExecMetrics,
) {
    loop {
        // Hold the lock only to dequeue, never while evaluating.
        let task = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let Ok(Task { request, reply, submitted }) = task else { return };
        metrics.queue_depth.sub(1);
        metrics
            .queue_wait_us
            .observe(submitted.elapsed().as_secs_f64() * 1e6);
        metrics.in_flight.add(1);
        let started = Instant::now();
        let opts = request
            .opts
            .unwrap_or_else(|| engine.config().query.clone());
        let results = engine.query(&request.query, request.strategy, &opts);
        metrics.wall_us.observe(started.elapsed().as_secs_f64() * 1e6);
        metrics.in_flight.sub(1);
        if let Err(e) = &results {
            metrics.record_error(e);
        }

        // The submitter may have dropped the receiver; that's fine.
        let _ = reply.send(results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;

    fn small_engine() -> Arc<XRankEngine> {
        let mut b = EngineBuilder::new();
        for i in 0..20 {
            b.add_xml(
                &format!("doc{i}"),
                &format!("<r><a>shared words {i}</a><b>shared extra</b></r>"),
            )
            .unwrap();
        }
        Arc::new(b.build())
    }

    #[test]
    fn executes_queries_on_workers() {
        let engine = small_engine();
        let exec = QueryExecutor::new(Arc::clone(&engine), 2, 4);
        assert_eq!(exec.worker_count(), 2);
        let direct = engine
            .query("shared words", Strategy::Hdil, &engine.config().query)
            .unwrap();
        let pooled = exec
            .execute(QueryRequest::new("shared words", Strategy::Hdil))
            .unwrap();
        assert_eq!(direct.hits.len(), pooled.hits.len());
        for (a, b) in direct.hits.iter().zip(&pooled.hits) {
            assert_eq!(a.dewey, b.dewey);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn many_concurrent_submissions_drain() {
        let engine = small_engine();
        let exec = QueryExecutor::new(engine, 4, 2);
        let pending: Vec<_> = (0..64)
            .map(|i| {
                let q = if i % 2 == 0 { "shared words" } else { "shared extra" };
                exec.submit(QueryRequest::new(q, Strategy::Dil)).unwrap()
            })
            .collect();
        for (i, rx) in pending.into_iter().enumerate() {
            let r = rx.recv().expect("completed").unwrap();
            assert!(!r.hits.is_empty(), "request {i} returned no hits");
        }
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let engine = small_engine();
        let exec = QueryExecutor::new(engine, 2, 64);
        let pending: Vec<_> = (0..32)
            .map(|_| exec.submit(QueryRequest::new("shared words", Strategy::Hdil)).unwrap())
            .collect();
        exec.shutdown(); // blocks until every accepted request is served
        for rx in pending {
            let r = rx.recv().expect("reply delivered before shutdown returned").unwrap();
            assert!(!r.hits.is_empty());
        }
    }

    #[test]
    fn per_query_deadline_surfaces_as_timeout() {
        let engine = small_engine();
        let exec = QueryExecutor::new(engine, 1, 4);
        let opts = QueryOptions {
            timeout: Some(std::time::Duration::ZERO),
            ..QueryOptions::default()
        };
        let reply = exec.execute(QueryRequest {
            query: "shared words".into(),
            strategy: Strategy::Dil,
            opts: Some(opts),
        });
        assert!(matches!(reply, Err(QueryError::Timeout)), "got {reply:?}");
    }
}
