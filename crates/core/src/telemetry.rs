//! Engine-level observability: pre-resolved metric handles, the
//! slow-query log, and the EXPLAIN rendering.
//!
//! The engine owns one [`MetricsRegistry`]; every handle the serving path
//! touches is resolved here once, at engine construction, so recording a
//! query is a handful of relaxed atomic adds — never a lock or a map
//! lookup. Pool-level quantities (hit ratio, eviction counters,
//! per-segment read classification) are *published* into the registry at
//! scrape time instead of being incremented inline, which keeps the
//! storage crate free of any observability dependency.

use crate::engine::Strategy;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;
use xrank_obs::{Counter, EventData, Gauge, Histogram, MetricsRegistry, RecorderConfig, Trace};
use xrank_query::{EvalStats, QueryError};
use xrank_storage::IoStats;

/// Observability configuration ([`crate::EngineConfig::obs`]).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Whether the registry records on the hot path. When off, every
    /// recording call is one relaxed load and a branch; scraping still
    /// works (it just reads zeros for the gated series).
    pub metrics_enabled: bool,
    /// Queries at least this slow are captured in the slow-query log.
    pub slow_query_threshold: Duration,
    /// Ring-buffer capacity of the slow-query log.
    pub slow_log_capacity: usize,
    /// Background operations (commits, compactions) at least this slow
    /// are captured in the update pipeline's slow-op log.
    pub slow_op_threshold: Duration,
    /// Ring-buffer capacity of the slow-op log.
    pub slow_op_capacity: usize,
    /// Flight-recorder retention policy (always-on trace ring; see
    /// [`xrank_obs::FlightRecorder`]).
    pub recorder: RecorderConfig,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            metrics_enabled: true,
            slow_query_threshold: Duration::from_millis(100),
            slow_log_capacity: 64,
            slow_op_threshold: Duration::from_millis(250),
            slow_op_capacity: 32,
            recorder: RecorderConfig::default(),
        }
    }
}

/// Stable label for a strategy, baked into metric series names and used
/// in EXPLAIN output.
pub(crate) fn strategy_label(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Dil => "dil",
        Strategy::Rdil => "rdil",
        Strategy::Hdil => "hdil",
        Strategy::NaiveId => "naive_id",
        Strategy::NaiveRank => "naive_rank",
    }
}

fn strategy_slot(strategy: Strategy) -> usize {
    match strategy {
        Strategy::Dil => 0,
        Strategy::Rdil => 1,
        Strategy::Hdil => 2,
        Strategy::NaiveId => 3,
        Strategy::NaiveRank => 4,
    }
}

/// Labels in slot order; slot 5 is the disjunctive (`search_any`) path.
const STRATEGY_LABELS: [&str; 6] = ["dil", "rdil", "hdil", "naive_id", "naive_rank", "any"];

/// Slot index of the disjunctive path.
pub(crate) const ANY_SLOT: usize = 5;

struct PerStrategy {
    queries: Counter,
    latency_us: Histogram,
}

/// Every handle the engine's query path records through, resolved once.
pub(crate) struct EngineMetrics {
    per_strategy: Vec<PerStrategy>,
    err_storage: Counter,
    err_timeout: Counter,
    err_unavailable: Counter,
    err_overloaded: Counter,
    err_budget: Counter,
    degraded_deadline: Counter,
    degraded_budget: Counter,
    degraded_quarantined: Counter,
    slow_queries: Counter,
    rdil_probes: Counter,
    rdil_memo_hits: Counter,
    cursor_seek_forward: Counter,
    cursor_seek_backward: Counter,
    cursor_redescent: Counter,
    blocks_decoded: Counter,
    blocks_skipped: Counter,
}

impl EngineMetrics {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        let per_strategy = STRATEGY_LABELS
            .iter()
            .map(|label| PerStrategy {
                queries: registry.counter(&format!("xrank_queries_total{{strategy=\"{label}\"}}")),
                latency_us: registry
                    .latency_histogram_us(&format!("xrank_query_latency_us{{strategy=\"{label}\"}}")),
            })
            .collect();
        EngineMetrics {
            per_strategy,
            err_storage: registry.counter("xrank_query_errors_total{kind=\"storage\"}"),
            err_timeout: registry.counter("xrank_query_errors_total{kind=\"timeout\"}"),
            err_unavailable: registry.counter("xrank_query_errors_total{kind=\"unavailable\"}"),
            err_overloaded: registry.counter("xrank_query_errors_total{kind=\"overloaded\"}"),
            err_budget: registry.counter("xrank_query_errors_total{kind=\"budget\"}"),
            degraded_deadline: registry.counter("xrank_queries_degraded_total{reason=\"deadline\"}"),
            degraded_budget: registry.counter("xrank_queries_degraded_total{reason=\"io_budget\"}"),
            degraded_quarantined: registry
                .counter("xrank_queries_degraded_total{reason=\"quarantined\"}"),
            slow_queries: registry.counter("xrank_slow_queries_total"),
            rdil_probes: registry.counter("xrank_rdil_probes_total"),
            rdil_memo_hits: registry.counter("xrank_rdil_probe_memo_hits_total"),
            cursor_seek_forward: registry.counter("xrank_cursor_seek_forward_total"),
            cursor_seek_backward: registry.counter("xrank_cursor_seek_backward_total"),
            cursor_redescent: registry.counter("xrank_cursor_redescent_total"),
            blocks_decoded: registry.counter("xrank_blocks_decoded_total"),
            blocks_skipped: registry.counter("xrank_blocks_skipped_total"),
        }
    }

    /// Folds one evaluation's probe-path counters into the registry: how
    /// many Section 4.3.2 probes were issued and how each was served
    /// (memo hit / forward or backward seek / root re-descent).
    pub(crate) fn record_eval(&self, eval: &EvalStats) {
        if eval.btree_probes > 0 {
            self.rdil_probes.add(eval.btree_probes);
        }
        if eval.probe_memo_hits > 0 {
            self.rdil_memo_hits.add(eval.probe_memo_hits);
        }
        if eval.cursor_seeks > 0 {
            self.cursor_seek_forward.add(eval.cursor_seeks);
        }
        if eval.cursor_seeks_back > 0 {
            self.cursor_seek_backward.add(eval.cursor_seeks_back);
        }
        if eval.cursor_descents > 0 {
            self.cursor_redescent.add(eval.cursor_descents);
        }
        if eval.blocks_decoded > 0 {
            self.blocks_decoded.add(eval.blocks_decoded);
        }
        if eval.blocks_skipped > 0 {
            self.blocks_skipped.add(eval.blocks_skipped);
        }
    }

    /// Records a served query: QPS counter plus wall-latency histogram.
    pub(crate) fn record_ok(&self, slot: usize, elapsed: Duration) {
        let s = &self.per_strategy[slot];
        s.queries.inc();
        s.latency_us.observe(elapsed.as_secs_f64() * 1e6);
    }

    /// Records a failed query under its error kind.
    pub(crate) fn record_err(&self, err: &QueryError) {
        match err {
            QueryError::Storage(_) => self.err_storage.inc(),
            QueryError::Timeout => self.err_timeout.inc(),
            QueryError::Unavailable(_) => self.err_unavailable.inc(),
            QueryError::Overloaded => self.err_overloaded.inc(),
            QueryError::BudgetExhausted => self.err_budget.inc(),
        }
    }

    /// Records a degraded (partial) answer under its trigger.
    pub(crate) fn record_degraded(&self, reason: xrank_obs::DegradeReason) {
        match reason {
            xrank_obs::DegradeReason::Deadline => self.degraded_deadline.inc(),
            xrank_obs::DegradeReason::IoBudget => self.degraded_budget.inc(),
            xrank_obs::DegradeReason::Quarantined => self.degraded_quarantined.inc(),
        }
    }

    pub(crate) fn record_slow(&self) {
        self.slow_queries.inc();
    }

    pub(crate) fn slot_for(strategy: Strategy) -> usize {
        strategy_slot(strategy)
    }
}

/// Segment-lifecycle handles of the update pipeline, resolved once at
/// pipeline construction (same discipline as [`EngineMetrics`]): commits,
/// compactions and their failures as counters; the live shape of the
/// pipeline (segments, staged docs, delta bytes, pinned snapshots) as
/// gauges; build wall times as histograms.
pub(crate) struct UpdateMetrics {
    pub segments_live: Gauge,
    pub staged_docs: Gauge,
    pub delta_bytes: Gauge,
    pub tombstones_live: Gauge,
    pub snapshot_pins: Gauge,
    pub commits: Counter,
    pub commit_failures: Counter,
    pub compactions: Counter,
    pub compaction_failures: Counter,
    pub tombstones_gced: Counter,
    pub slow_ops: Counter,
    pub commit_wall_us: Histogram,
    pub compact_wall_us: Histogram,
    pub wal_appends: Counter,
    pub wal_append_failures: Counter,
    pub wal_fsyncs: Counter,
    pub wal_checkpoints: Counter,
    pub wal_replayed: Counter,
    pub wal_bytes: Gauge,
    pub scrub_pages: Counter,
    pub scrub_passes: Counter,
    pub scrub_corruptions: Counter,
    pub scrub_repairs: Counter,
    pub scrub_quarantined: Gauge,
    /// Queries that skipped a quarantined segment under `allow_partial`.
    /// Same series the engine-level degrade reasons use, resolved here
    /// because quarantine is a pipeline-level (not per-segment) degrade.
    pub degraded_quarantined: Counter,
}

impl UpdateMetrics {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        UpdateMetrics {
            segments_live: registry.gauge("xrank_update_segments_live"),
            staged_docs: registry.gauge("xrank_update_staged_docs"),
            delta_bytes: registry.gauge("xrank_update_delta_bytes"),
            tombstones_live: registry.gauge("xrank_update_tombstones_live"),
            snapshot_pins: registry.gauge("xrank_update_snapshot_pins"),
            commits: registry.counter("xrank_update_commits_total"),
            commit_failures: registry.counter("xrank_update_commit_failures_total"),
            compactions: registry.counter("xrank_update_compactions_total"),
            compaction_failures: registry.counter("xrank_update_compaction_failures_total"),
            tombstones_gced: registry.counter("xrank_update_tombstones_gced_total"),
            slow_ops: registry.counter("xrank_update_slow_ops_total"),
            commit_wall_us: registry.latency_histogram_us("xrank_update_commit_wall_us"),
            compact_wall_us: registry.latency_histogram_us("xrank_update_compact_wall_us"),
            wal_appends: registry.counter("xrank_wal_appends_total"),
            wal_append_failures: registry.counter("xrank_wal_append_failures_total"),
            wal_fsyncs: registry.counter("xrank_wal_fsyncs_total"),
            wal_checkpoints: registry.counter("xrank_wal_checkpoints_total"),
            wal_replayed: registry.counter("xrank_wal_replayed_records_total"),
            wal_bytes: registry.gauge("xrank_wal_bytes"),
            scrub_pages: registry.counter("xrank_scrub_pages_total"),
            scrub_passes: registry.counter("xrank_scrub_passes_total"),
            scrub_corruptions: registry.counter("xrank_scrub_corruptions_total"),
            scrub_repairs: registry.counter("xrank_scrub_repairs_total"),
            scrub_quarantined: registry.gauge("xrank_scrub_quarantined_segments"),
            degraded_quarantined: registry
                .counter("xrank_queries_degraded_total{reason=\"quarantined\"}"),
        }
    }

    /// Publishes the published-snapshot shape gauges.
    pub(crate) fn publish_shape(&self, snap: &crate::snapshot::Snapshot, staged: usize) {
        self.segments_live.set(snap.segment_count() as i64);
        self.staged_docs.set(staged as i64);
        self.delta_bytes.set(snap.delta_bytes() as i64);
        self.tombstones_live.set(snap.tombstone_count() as i64);
    }
}

/// One captured slow query.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// The raw query string.
    pub query: String,
    /// Strategy label (`dil`, `rdil`, `hdil`, `naive_id`, `naive_rank`,
    /// `any`).
    pub strategy: &'static str,
    /// Evaluation wall time.
    pub elapsed: Duration,
    /// Hits returned.
    pub hits: usize,
}

/// A bounded ring buffer of the most recent queries slower than the
/// configured threshold.
pub(crate) struct SlowQueryLog {
    threshold: Duration,
    capacity: usize,
    entries: Mutex<VecDeque<SlowQueryEntry>>,
}

impl SlowQueryLog {
    pub(crate) fn new(config: &ObsConfig) -> Self {
        SlowQueryLog {
            threshold: config.slow_query_threshold,
            capacity: config.slow_log_capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Captures `entry` if it clears the threshold; evicts the oldest
    /// entry beyond capacity. Returns whether it was captured.
    pub(crate) fn offer(&self, entry: SlowQueryEntry) -> bool {
        if entry.elapsed < self.threshold {
            return false;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }

    /// The captured entries, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<SlowQueryEntry> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

/// One captured slow background operation (commit, compaction, …).
///
/// Symmetric with [`SlowQueryEntry`], but background ops are rare and
/// their traces are the primary evidence — `CompactStats::trace` is
/// consumed by whoever triggered the fold, so this ring keeps its own
/// copy for later inspection via `UpdatableXRank::slow_ops`.
#[derive(Debug, Clone)]
pub struct SlowOpEntry {
    /// Operation kind label (`commit`, `compaction`).
    pub kind: &'static str,
    /// Human-readable description (segment id, fold shape…).
    pub label: String,
    /// Wall time of the operation.
    pub elapsed: Duration,
    /// The snapshot sequence the operation published (0 if none).
    pub seq: u64,
    /// The operation's finished trace.
    pub trace: Trace,
}

/// A bounded ring buffer of the most recent background operations slower
/// than [`ObsConfig::slow_op_threshold`].
pub(crate) struct SlowOpLog {
    threshold: Duration,
    capacity: usize,
    entries: Mutex<VecDeque<SlowOpEntry>>,
}

impl SlowOpLog {
    pub(crate) fn new(config: &ObsConfig) -> Self {
        SlowOpLog {
            threshold: config.slow_op_threshold,
            capacity: config.slow_op_capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Captures `entry` if it clears the threshold; evicts the oldest
    /// entry beyond capacity. Returns whether it was captured.
    pub(crate) fn offer(&self, entry: SlowOpEntry) -> bool {
        if entry.elapsed < self.threshold {
            return false;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }

    /// The captured entries, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<SlowOpEntry> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

/// Number of trace events rendered in full before eliding the middle.
const EXPLAIN_EVENT_HEAD: usize = 10;
const EXPLAIN_EVENT_TAIL: usize = 6;

/// The EXPLAIN view of one query: the per-stage trace, work counters, and
/// the per-query physical I/O delta, renderable via `Display`.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The raw query string.
    pub query: String,
    /// Strategy label.
    pub strategy: &'static str,
    /// Hits returned.
    pub hits: usize,
    /// Evaluation wall time.
    pub elapsed: Duration,
    /// Algorithmic work counters.
    pub eval: EvalStats,
    /// Physical I/O attributed to this query.
    pub io: IoStats,
    /// Degradation trigger, when the answer is a best-so-far partial.
    pub degraded: Option<xrank_obs::DegradeReason>,
    /// The per-stage timing/event trace.
    pub trace: Trace,
}

fn fmt_dur(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.1}µs")
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXPLAIN {:?} strategy={}", self.query, self.strategy)?;
        writeln!(f, "  hits={} elapsed={}", self.hits, fmt_dur(self.elapsed))?;
        if let Some(reason) = self.degraded {
            writeln!(
                f,
                "  degraded: partial answer (trigger={}) — best top-k at cut-off",
                reason.name()
            )?;
        }
        writeln!(
            f,
            "  io: seq_reads={} rand_reads={} cache_hits={} (hit ratio {:.1}%)",
            self.io.seq_reads,
            self.io.rand_reads,
            self.io.cache_hits,
            100.0 * self.io.cache_hits as f64 / (self.io.logical_reads().max(1)) as f64,
        )?;
        writeln!(
            f,
            "  work: entries_scanned={} btree_probes={} hash_probes={} range_scans={}",
            self.eval.entries_scanned,
            self.eval.btree_probes,
            self.eval.hash_probes,
            self.eval.range_scans,
        )?;
        if self.eval.btree_probes > 0 {
            write!(
                f,
                "  probes: issued={} memo_hits={} seek_forward={} seek_backward={} re_descent={}",
                self.eval.btree_probes,
                self.eval.probe_memo_hits,
                self.eval.cursor_seeks,
                self.eval.cursor_seeks_back,
                self.eval.cursor_descents,
            )?;
            // Probes per TA round, before vs after the stateful-cursor
            // path: before, every probe was a root descent; now only the
            // `cursor_descents` remainder is.
            let rounds = self
                .trace
                .events
                .iter()
                .filter(|e| matches!(e.data, EventData::TaRound { .. }))
                .count() as u64;
            if rounds > 0 {
                writeln!(
                    f,
                    " descents_per_round: before={:.2} after={:.2} ({rounds} rounds)",
                    self.eval.btree_probes as f64 / rounds as f64,
                    self.eval.cursor_descents as f64 / rounds as f64,
                )?;
            } else {
                writeln!(f)?;
            }
        }
        if self.eval.blocks_decoded + self.eval.blocks_skipped > 0 {
            writeln!(
                f,
                "  blocks: decoded={} skipped={} ({:.1}% skipped)",
                self.eval.blocks_decoded,
                self.eval.blocks_skipped,
                100.0 * self.eval.blocks_skipped as f64
                    / (self.eval.blocks_decoded + self.eval.blocks_skipped) as f64,
            )?;
        }
        if let Some(sw) = self.eval.switch {
            writeln!(
                f,
                "  switch: reason={} spent={:.1} rdil_remaining={} dil_estimate={:.1} confirmed={}",
                sw.reason.name(),
                sw.spent,
                sw.rdil_remaining
                    .map_or_else(|| "n/a".to_string(), |v| format!("{v:.1}")),
                sw.dil_estimate,
                sw.confirmed,
            )?;
        }
        writeln!(f, "  stages:")?;
        for t in &self.trace.stages {
            writeln!(
                f,
                "    {:<16} {:>8}x {:>12}",
                t.stage.name(),
                t.count,
                fmt_dur(t.total)
            )?;
        }
        if !self.trace.events.is_empty() {
            writeln!(f, "  events:")?;
            let n = self.trace.events.len();
            let elide = n > EXPLAIN_EVENT_HEAD + EXPLAIN_EVENT_TAIL;
            for (i, e) in self.trace.events.iter().enumerate() {
                if elide && i == EXPLAIN_EVENT_HEAD {
                    writeln!(
                        f,
                        "    … {} events elided …",
                        n - EXPLAIN_EVENT_HEAD - EXPLAIN_EVENT_TAIL
                    )?;
                }
                if elide && i >= EXPLAIN_EVENT_HEAD && i < n - EXPLAIN_EVENT_TAIL {
                    continue;
                }
                write!(f, "    +{:<10}", fmt_dur(e.at))?;
                match &e.data {
                    EventData::TaRound { entries, threshold, confirmed } => writeln!(
                        f,
                        " ta_round entries={entries} threshold={threshold:.4} confirmed={confirmed}"
                    )?,
                    EventData::Switch {
                        spent,
                        rdil_remaining,
                        dil_estimate,
                        confirmed,
                        reason,
                    } => writeln!(
                        f,
                        " switch reason={} spent={spent:.1} rdil_remaining={} dil_estimate={dil_estimate:.1} confirmed={confirmed}",
                        reason.name(),
                        rdil_remaining
                            .map_or_else(|| "n/a".to_string(), |v| format!("{v:.1}")),
                    )?,
                    EventData::Count { what, n } => {
                        writeln!(f, " {} {what}={n}", e.stage.name())?
                    }
                    EventData::Degraded { reason } => {
                        writeln!(f, " degraded trigger={}", reason.name())?
                    }
                    EventData::Note(note) => writeln!(f, " {} {note}", e.stage.name())?,
                }
            }
        }
        if self.trace.dropped_events > 0 {
            writeln!(f, "  (dropped {} events beyond cap)", self.trace.dropped_events)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_log_captures_only_above_threshold_and_bounds_capacity() {
        let log = SlowQueryLog::new(&ObsConfig {
            metrics_enabled: true,
            slow_query_threshold: Duration::from_millis(10),
            slow_log_capacity: 2,
            ..Default::default()
        });
        let entry = |q: &str, ms: u64| SlowQueryEntry {
            query: q.to_string(),
            strategy: "hdil",
            elapsed: Duration::from_millis(ms),
            hits: 1,
        };
        assert!(!log.offer(entry("fast", 1)));
        assert!(log.offer(entry("a", 20)));
        assert!(log.offer(entry("b", 30)));
        assert!(log.offer(entry("c", 40)));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2, "ring evicts oldest");
        assert_eq!(snap[0].query, "b");
        assert_eq!(snap[1].query, "c");
    }

    #[test]
    fn slow_op_log_mirrors_slow_query_semantics() {
        let log = SlowOpLog::new(&ObsConfig {
            slow_op_threshold: Duration::from_millis(10),
            slow_op_capacity: 2,
            ..Default::default()
        });
        assert_eq!(log.threshold(), Duration::from_millis(10));
        let entry = |label: &str, ms: u64| SlowOpEntry {
            kind: "commit",
            label: label.to_string(),
            elapsed: Duration::from_millis(ms),
            seq: 7,
            trace: Trace::default(),
        };
        assert!(!log.offer(entry("fast", 1)));
        assert!(log.offer(entry("a", 20)));
        assert!(log.offer(entry("b", 30)));
        assert!(log.offer(entry("c", 40)));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2, "ring evicts oldest");
        assert_eq!(snap[0].label, "b");
        assert_eq!(snap[1].label, "c");
        assert_eq!(snap[1].seq, 7);
    }

    #[test]
    fn explain_renders_stages_and_switch() {
        use xrank_obs::{QueryTrace, Stage, SwitchReason};
        let qt = QueryTrace::enabled();
        {
            let _s = qt.span(Stage::TaLoop);
        }
        qt.event(
            Stage::SwitchDecision,
            EventData::Switch {
                spent: 12.0,
                rdil_remaining: Some(99.5),
                dil_estimate: 40.0,
                confirmed: 1,
                reason: SwitchReason::EstimateExceeded,
            },
        );
        let explain = Explain {
            query: "xql language".into(),
            strategy: "hdil",
            hits: 3,
            elapsed: Duration::from_micros(420),
            eval: EvalStats::default(),
            io: IoStats::default(),
            degraded: Some(xrank_obs::DegradeReason::Deadline),
            trace: qt.finish(),
        };
        let text = explain.to_string();
        assert!(text.contains("strategy=hdil"), "{text}");
        assert!(text.contains("ta_loop"), "{text}");
        assert!(text.contains("reason=estimate_exceeded"), "{text}");
        assert!(text.contains("rdil_remaining=99.5"), "{text}");
        assert!(text.contains("dil_estimate=40.0"), "{text}");
        assert!(text.contains("degraded: partial answer (trigger=deadline)"), "{text}");
    }
}
