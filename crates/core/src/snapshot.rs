//! Immutable index segments and the pinned-snapshot read protocol of the
//! update pipeline.
//!
//! A [`Segment`] is a sealed, never-mutated engine over the batch of
//! documents one `commit` made searchable (or one compaction folded
//! together). The set of live segments — plus, per segment, the set of
//! document URIs deleted *since it sealed* — forms a [`Snapshot`]. The
//! pipeline publishes snapshots by swapping one `Arc` behind a brief
//! `RwLock`; a reader clones that `Arc` once at query start
//! ([`crate::UpdatableXRank::pin`]) and then owns every index page,
//! tombstone set, and collection it needs for the whole query, no matter
//! how many commits and compactions land mid-flight. Nothing a writer
//! does can mutate a pinned snapshot: deletes and commits build *new*
//! [`SegmentView`]s around the shared immutable [`Segment`]s
//! (copy-on-write tombstone sets), and compaction replaces whole
//! segments, whose `Arc`s stay alive until the last pin drops.

use crate::engine::{Strategy, XRankEngine};
use crate::results::SearchResults;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use xrank_query::{QueryError, QueryOptions};
use xrank_storage::{FileStore, MemStore, PageId, PageStore, SegmentId, StorageResult, PAGE_SIZE};

/// The source text of a live document, kept beside each segment so
/// compaction can rebuild folded segments from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DocSource {
    /// An XML document (validated at add time).
    Xml(String),
    /// An HTML page (flattened to one element at index time).
    Html(String),
}

impl DocSource {
    /// Approximate in-memory footprint used for compaction sizing.
    pub(crate) fn bytes(&self) -> u64 {
        match self {
            DocSource::Xml(s) | DocSource::Html(s) => s.len() as u64,
        }
    }
}

/// A segment engine over either backing store: ephemeral pipelines build
/// in-memory segments, durable pipelines build file-backed ones through
/// the crash-safe staged-write machinery.
pub(crate) enum AnyEngine {
    /// In-memory segment (ephemeral pipeline).
    Mem(XRankEngine<MemStore>),
    /// File-backed segment (durable pipeline, crash-safe layout).
    File(XRankEngine<FileStore>),
}

impl AnyEngine {
    /// Concurrent-safe query against the segment's warm shared cache.
    pub(crate) fn query(
        &self,
        query: &str,
        strategy: Strategy,
        opts: &QueryOptions,
    ) -> Result<SearchResults, QueryError> {
        match self {
            AnyEngine::Mem(e) => e.query(query, strategy, opts),
            AnyEngine::File(e) => e.query(query, strategy, opts),
        }
    }

    /// Total physical pages across the segment's store files (0 for
    /// in-memory segments — no device bytes to rot).
    pub(crate) fn page_total(&self) -> u64 {
        match self {
            AnyEngine::Mem(_) => 0,
            AnyEngine::File(e) => {
                let store = e.pool().store();
                (0..store.segment_count())
                    .map(|s| store.page_count(SegmentId(s)) as u64)
                    .sum()
            }
        }
    }

    /// Verifies the `flat`-th physical page (flat index across the store's
    /// segment files in order): a direct read off the medium, bypassing
    /// the page cache, so the checksum-and-trailer check exercises what is
    /// actually on disk. The scrubber's unit of work.
    pub(crate) fn verify_page(&self, flat: u64) -> StorageResult<()> {
        match self {
            AnyEngine::Mem(_) => Ok(()),
            AnyEngine::File(e) => {
                let store = e.pool().store();
                let mut rest = flat;
                for s in 0..store.segment_count() {
                    let seg = SegmentId(s);
                    let pages = store.page_count(seg) as u64;
                    if rest < pages {
                        let mut buf = vec![0u8; PAGE_SIZE];
                        return store.read_page(PageId::new(seg, rest as u32), &mut buf);
                    }
                    rest -= pages;
                }
                Ok(())
            }
        }
    }

    /// Per-document rank slices (URI → scores in element-id order), the
    /// warm-start seed compaction feeds the next build.
    pub(crate) fn rank_slices(&self, into: &mut std::collections::HashMap<String, Vec<f64>>) {
        let (collection, scores) = match self {
            AnyEngine::Mem(e) => (e.collection(), &e.rank_result().scores),
            AnyEngine::File(e) => (e.collection(), &e.rank_result().scores),
        };
        for doc in collection.docs() {
            let lo = doc.root as usize;
            let hi = lo + doc.element_count as usize;
            into.insert(doc.uri.clone(), scores[lo..hi].to_vec());
        }
    }
}

/// A sealed, immutable segment: the engine, the documents it indexes, and
/// a stable id tying it to its on-disk directory (`seg-<id>/`).
pub(crate) struct Segment {
    /// Stable segment id (names the on-disk directory).
    pub id: u64,
    /// The sealed engine.
    pub engine: AnyEngine,
    /// Every document the segment indexes (URI → source), fixed at seal.
    pub docs: BTreeMap<String, DocSource>,
    /// Approximate source bytes (compaction sizing).
    pub bytes: u64,
}

impl Segment {
    pub(crate) fn new(id: u64, engine: AnyEngine, docs: BTreeMap<String, DocSource>) -> Self {
        let bytes = docs.values().map(DocSource::bytes).sum();
        Segment { id, engine, docs, bytes }
    }
}

/// One segment as a particular snapshot sees it: the shared immutable
/// [`Segment`] plus the tombstones accumulated against it *by that
/// snapshot's time*. Later deletes produce new views with a fresh
/// tombstone `Arc`; existing pins keep reading the old one.
#[derive(Clone)]
pub(crate) struct SegmentView {
    pub seg: Arc<Segment>,
    pub tombstones: Arc<HashSet<String>>,
}

impl SegmentView {
    /// A view with no deletes yet.
    pub(crate) fn fresh(seg: Arc<Segment>) -> Self {
        SegmentView { seg, tombstones: Arc::new(HashSet::new()) }
    }

    /// Live (non-tombstoned) documents in this view.
    pub(crate) fn live_docs(&self) -> impl Iterator<Item = (&String, &DocSource)> {
        self.seg.docs.iter().filter(|(uri, _)| !self.tombstones.contains(*uri))
    }

    /// Whether `uri` is live in this view.
    pub(crate) fn contains_live(&self, uri: &str) -> bool {
        self.seg.docs.contains_key(uri) && !self.tombstones.contains(uri)
    }

    /// Copy-on-write: this view plus one more tombstone.
    pub(crate) fn with_tombstone(&self, uri: &str) -> Self {
        let mut t: HashSet<String> = (*self.tombstones).clone();
        t.insert(uri.to_string());
        SegmentView { seg: Arc::clone(&self.seg), tombstones: Arc::new(t) }
    }
}

/// An immutable published state of the index: an ordered set of segment
/// views. Readers pin one for the duration of a query (see
/// [`crate::UpdatableXRank::pin`]); writers never mutate a published
/// snapshot, they publish successors.
pub struct Snapshot {
    pub(crate) seq: u64,
    /// Oldest segment first; a URI is live in at most one view.
    pub(crate) views: Vec<SegmentView>,
}

impl Snapshot {
    /// The empty initial snapshot.
    pub(crate) fn empty() -> Self {
        Snapshot { seq: 0, views: Vec::new() }
    }

    /// The manifest sequence number this snapshot was published under
    /// (0 for the initial empty state).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.views.len()
    }

    /// Number of live (searchable, non-tombstoned) documents.
    pub fn live_doc_count(&self) -> usize {
        self.views.iter().map(|v| v.live_docs().count()).sum()
    }

    /// Number of tombstoned documents awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.views.iter().map(|v| v.tombstones.len()).sum()
    }

    /// Total approximate source bytes outside the largest segment — the
    /// "delta" a compaction would fold (0 with ≤ 1 segment).
    pub fn delta_bytes(&self) -> u64 {
        let largest = self.views.iter().map(|v| v.seg.bytes).max().unwrap_or(0);
        let total: u64 = self.views.iter().map(|v| v.seg.bytes).sum();
        total - largest
    }

    /// The newest view holding `uri` live, if any.
    pub(crate) fn live_view_of(&self, uri: &str) -> Option<usize> {
        self.views.iter().rposition(|v| v.contains_live(uri))
    }
}
