//! Document-granularity updates (paper, Section 4.5).
//!
//! "Document-granularity updates (i.e., adding or deleting documents) can
//! be handled exactly like in traditional inverted lists ... because DIL,
//! RDIL, and HDIL do not replicate ancestor information, and because the
//! first component of the Dewey IDs contains the document ID (which can be
//! used for deletion)."
//!
//! [`UpdatableXRank`] realizes that with the classic main+delta scheme
//! traditional engines use ([7], [34] in the paper's bibliography):
//!
//! * **deletes** are immediate tombstones on the document URI — hits from
//!   tombstoned documents are filtered at presentation time (the Dewey
//!   ID's leading document component identifies them), and the postings
//!   are physically dropped at the next compaction;
//! * **adds** are staged and become searchable at [`UpdatableXRank::commit`],
//!   which builds a small *delta* engine over the added documents only;
//!   queries run against both engines and merge by score;
//! * [`UpdatableXRank::compact`] rebuilds one engine over the live
//!   documents, restoring single-index performance and re-resolving
//!   cross-document hyperlinks between old and new documents (until then,
//!   links between the main and delta collections remain unresolved — the
//!   delta's ElemRanks are computed locally, consistent with offline
//!   ElemRank computation in Figure 2).
//!
//! Element-granularity insertion (renumbering sibling Dewey IDs, paper's
//! reference [32]) is future work here exactly as it was in the paper.

use crate::engine::{EngineBuilder, EngineConfig, Strategy, XRankEngine};
use crate::results::{SearchHit, SearchResults};
use std::collections::{BTreeMap, HashSet};
use xrank_query::{QueryError, QueryOptions};

/// The source text of a live document (kept for compaction rebuilds).
#[derive(Debug, Clone, PartialEq, Eq)]
enum DocSource {
    Xml(String),
    Html(String),
}

/// An XRANK engine supporting document-granularity adds and deletes.
pub struct UpdatableXRank {
    config: EngineConfig,
    /// Live documents (URI → source), the durable state.
    docs: BTreeMap<String, DocSource>,
    /// Staged additions not yet searchable.
    staged: BTreeMap<String, DocSource>,
    main: XRankEngine,
    /// URIs indexed by the main engine (tombstone routing).
    main_uris: HashSet<String>,
    /// Tombstones against the main engine's postings.
    deleted_main: HashSet<String>,
    delta: Option<XRankEngine>,
    /// Tombstones against the current delta engine's postings.
    deleted_delta: HashSet<String>,
}

impl UpdatableXRank {
    /// An empty updatable engine.
    pub fn new(config: EngineConfig) -> Self {
        let main = EngineBuilder::with_config(config.clone()).build();
        UpdatableXRank {
            config,
            docs: BTreeMap::new(),
            staged: BTreeMap::new(),
            main,
            main_uris: HashSet::new(),
            deleted_main: HashSet::new(),
            delta: None,
            deleted_delta: HashSet::new(),
        }
    }

    /// Stages an XML document (validated now, searchable after `commit`).
    /// Re-adding an existing URI replaces it (delete + add).
    pub fn add_xml(&mut self, uri: &str, xml: &str) -> Result<(), xrank_xml::XmlError> {
        xrank_xml::parse(xml)?; // validate before accepting
        if self.docs.contains_key(uri) {
            self.delete(uri);
        }
        self.staged.insert(uri.to_string(), DocSource::Xml(xml.to_string()));
        Ok(())
    }

    /// Stages an HTML page.
    pub fn add_html(&mut self, uri: &str, html: &str) {
        if self.docs.contains_key(uri) {
            self.delete(uri);
        }
        self.staged.insert(uri.to_string(), DocSource::Html(html.to_string()));
    }

    /// Tombstones a document immediately (also cancels a staged add).
    /// Returns whether anything was removed.
    pub fn delete(&mut self, uri: &str) -> bool {
        let staged = self.staged.remove(uri).is_some();
        let live = self.docs.remove(uri).is_some();
        if live {
            // Route the tombstone to whichever engine holds the postings.
            if self.main_uris.contains(uri) {
                self.deleted_main.insert(uri.to_string());
            } else {
                self.deleted_delta.insert(uri.to_string());
            }
        }
        staged || live
    }

    /// Makes staged documents searchable by (re)building the delta engine.
    pub fn commit(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        for (uri, src) in std::mem::take(&mut self.staged) {
            self.docs.insert(uri, src);
        }
        // The delta covers every live document added since the last
        // compaction — i.e., those not in the main engine's collection.
        // It is rebuilt from live documents only, so its tombstones reset.
        let mut builder = EngineBuilder::with_config(self.config.clone());
        let mut any = false;
        for (uri, src) in &self.docs {
            if self.main_uris.contains(uri) {
                continue;
            }
            any = true;
            match src {
                DocSource::Xml(xml) => {
                    builder.add_xml(uri, xml).expect("validated at add time")
                }
                DocSource::Html(html) => builder.add_html(uri, html),
            }
        }
        self.delta = any.then(|| builder.build());
        self.deleted_delta.clear();
    }

    /// Rebuilds a single engine over the live documents: tombstoned
    /// postings disappear, cross-document links between old and new
    /// documents resolve, and ElemRank is recomputed globally.
    pub fn compact(&mut self) {
        self.commit_staged_into_docs();
        let mut builder = EngineBuilder::with_config(self.config.clone());
        for (uri, src) in &self.docs {
            match src {
                DocSource::Xml(xml) => {
                    builder.add_xml(uri, xml).expect("validated at add time")
                }
                DocSource::Html(html) => builder.add_html(uri, html),
            }
        }
        self.main = builder.build();
        self.main_uris = self.docs.keys().cloned().collect();
        self.delta = None;
        self.deleted_main.clear();
        self.deleted_delta.clear();
    }

    fn commit_staged_into_docs(&mut self) {
        for (uri, src) in std::mem::take(&mut self.staged) {
            self.docs.insert(uri, src);
        }
    }

    /// Searches live documents (main + delta, tombstones filtered),
    /// merging by score. A storage fault in either engine surfaces as a
    /// typed [`QueryError`] for this query only.
    pub fn search(&self, query: &str, m: usize) -> Result<SearchResults, QueryError> {
        self.search_opts(query, m, QueryOptions::default())
    }

    /// [`UpdatableXRank::search`] with explicit options. A relative
    /// `timeout` is resolved to one absolute deadline *before* the main
    /// pass and shared with the delta pass — the two passes are one query
    /// and get one time budget, not a fresh timeout each (a query that
    /// exhausts its budget on the main index must not get a second full
    /// allowance on the delta). `allow_partial` and `io_budget` apply to
    /// both passes; a degraded flag from either marks the merged result.
    pub fn search_opts(
        &self,
        query: &str,
        m: usize,
        opts: QueryOptions,
    ) -> Result<SearchResults, QueryError> {
        let slack = self.deleted_main.len() + self.deleted_delta.len() + 8;
        let mut opts = QueryOptions { top_m: m + slack, ..opts };
        if let Some(shared) = opts.deadline() {
            opts.deadline_at = Some(shared);
            opts.timeout = None;
        }
        let mut primary = self.main.search_with(query, Strategy::Hdil, &opts)?;
        primary.hits.retain(|h| !self.deleted_main.contains(&h.doc_uri));
        let mut hits: Vec<SearchHit> = Vec::new();
        let mut eval = primary.eval;
        let mut io = primary.io;
        let mut degraded = primary.degraded;
        hits.append(&mut primary.hits);
        if let Some(delta) = &self.delta {
            let mut secondary = delta.search_with(query, Strategy::Hdil, &opts)?;
            secondary.hits.retain(|h| !self.deleted_delta.contains(&h.doc_uri));
            eval.entries_scanned += secondary.eval.entries_scanned;
            eval.btree_probes += secondary.eval.btree_probes;
            io.seq_reads += secondary.io.seq_reads;
            io.rand_reads += secondary.io.rand_reads;
            io.cache_hits += secondary.io.cache_hits;
            degraded = degraded.or(secondary.degraded);
            hits.append(&mut secondary.hits);
        }
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.dewey.cmp(&b.dewey)));
        hits.truncate(m);
        Ok(SearchResults { hits, eval, io, elapsed: primary.elapsed, trace: None, degraded })
    }

    /// Number of live (searchable or staged) documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len() + self.staged.len()
    }

    /// Number of staged (not yet searchable) documents.
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }

    /// Number of tombstoned documents awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.deleted_main.len() + self.deleted_delta.len()
    }

    /// The main engine (for inspection).
    pub fn main_engine(&self) -> &XRankEngine {
        &self.main
    }
}
