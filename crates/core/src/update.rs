//! Document-granularity updates (paper, Section 4.5) as a crash-safe
//! segmented pipeline.
//!
//! "Document-granularity updates (i.e., adding or deleting documents) can
//! be handled exactly like in traditional inverted lists ... because DIL,
//! RDIL, and HDIL do not replicate ancestor information, and because the
//! first component of the Dewey IDs contains the document ID (which can be
//! used for deletion)."
//!
//! [`UpdatableXRank`] realizes that with an LSM-style pipeline of
//! immutable sealed segments behind an atomically-swapped, versioned,
//! CRC-checked manifest (see [`crate::snapshot`] and [`crate::manifest`]):
//!
//! * **adds** are staged and become searchable at
//!   [`UpdatableXRank::commit`], which builds the *next segment* off to
//!   the side (through the PR 3 staged-write + fsync + rename machinery
//!   when the pipeline is durable) and publishes it with a single
//!   manifest swap;
//! * **deletes** are immediate per-segment tombstones: hits from
//!   tombstoned documents are filtered at presentation time (the Dewey
//!   ID's leading document component identifies them) and their postings
//!   are physically dropped at the next compaction;
//! * **reads** pin a snapshot `Arc` for the whole query —
//!   [`UpdatableXRank::search`] takes `&self` and runs concurrently with
//!   any number of commits and compactions, which only ever publish *new*
//!   snapshots;
//! * [`UpdatableXRank::compact`] folds every segment (plus staged docs)
//!   into one: tombstoned postings disappear, cross-segment hyperlinks
//!   resolve, and ElemRank is recomputed globally — warm-started from the
//!   previous segments' rank vectors through the seeded CSR kernel
//!   ([`xrank_rank::elem_rank_seeded`]), so the rebuild converges in a
//!   fraction of the cold sweeps. [`UpdatableXRank::merge_small`] is the
//!   background variant folding only small segments (see
//!   [`crate::Compactor`]).
//!
//! Crash safety: every mutation builds its files off to the side and
//! publishes with one atomic `CURRENT` rename. Recovery
//! ([`UpdatableXRank::open`]) returns to the last *published* snapshot at
//! any kill point, which the deterministic [`CrashPoint`] injection hook
//! proves step by step (`crates/core/tests/update_crash.rs`).
//!
//! Element-granularity insertion (renumbering sibling Dewey IDs, paper's
//! reference [32]) is future work here exactly as it was in the paper.

use crate::engine::{EngineBuilder, EngineConfig, Strategy};
use crate::manifest::{self, ManifestData, ManifestSegment};
use crate::results::{SearchHit, SearchResults};
use crate::snapshot::{AnyEngine, DocSource, Segment, SegmentView, Snapshot};
use crate::telemetry::{SlowOpEntry, SlowOpLog, UpdateMetrics};
use crate::wal::{Wal, WalFault, WalRecord};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use xrank_obs::{
    DegradeReason, EventData, FlightRecorder, Gauge, MetricsRegistry, OpKind, OpOutcome,
    QueryTrace, Stage, Trace,
};
use xrank_query::{CancelToken, QueryError, QueryOptions};
use xrank_storage::{FileStore, MemStore, StorageError};

/// Typed failure of an update-pipeline mutation. Queries keep their own
/// [`QueryError`]; this covers `commit`/`compact`/`delete`/`open`, which
/// touch the filesystem and rebuild indexes.
#[derive(Debug)]
pub enum UpdateError {
    /// An index build failed at the storage layer (failing or full device).
    Storage(StorageError),
    /// A filesystem operation on the segment/manifest layout failed.
    Io(std::io::Error),
    /// A staged document failed to re-parse at rebuild time.
    Xml(xrank_xml::XmlError),
    /// The deterministic crash-injection hook fired
    /// ([`UpdatableXRank::inject_crash`]): the mutation stopped dead at
    /// the armed step, exactly as a process kill there would, leaving
    /// the published state untouched.
    InjectedCrash(CrashPoint),
    /// A cancellable fold observed its [`CancelToken`] (pipeline
    /// shutdown) and stopped before publishing.
    Cancelled,
    /// A write-ahead-log append failed (failing or full device). The
    /// mutation was rejected *atomically* — nothing staged, nothing
    /// tombstoned, nothing published — and the pipeline keeps serving
    /// the state it had.
    WalAppend(StorageError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Storage(e) => write!(f, "update storage error: {e}"),
            UpdateError::Io(e) => write!(f, "update I/O error: {e}"),
            UpdateError::Xml(e) => write!(f, "update XML error: {e}"),
            UpdateError::InjectedCrash(p) => write!(f, "injected crash at {p:?}"),
            UpdateError::Cancelled => write!(f, "update cancelled"),
            UpdateError::WalAppend(e) => {
                write!(f, "wal append failed, mutation rejected: {e}")
            }
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Storage(e) | UpdateError::WalAppend(e) => Some(e),
            UpdateError::Io(e) => Some(e),
            UpdateError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for UpdateError {
    fn from(e: StorageError) -> Self {
        UpdateError::Storage(e)
    }
}

impl From<std::io::Error> for UpdateError {
    fn from(e: std::io::Error) -> Self {
        UpdateError::Io(e)
    }
}

impl From<xrank_xml::XmlError> for UpdateError {
    fn from(e: xrank_xml::XmlError) -> Self {
        UpdateError::Xml(e)
    }
}

/// Deterministic kill points of the commit/compaction protocol, for the
/// crash-injection harness (the update-pipeline analogue of the storage
/// crate's `FaultStore`). Arm one with [`UpdatableXRank::inject_crash`];
/// the next mutation stops dead there — no in-memory publish, no cleanup
/// — modelling a process kill at that step. Reopening the directory must
/// then recover the last *published* snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before the new segment's files are built (mid-segment-build).
    DuringSegmentBuild,
    /// After the segment sealed durably, before its manifest is written.
    AfterSegmentSeal,
    /// After `MANIFEST-<seq>` is written and fsynced, before the atomic
    /// `CURRENT` swap — the new manifest exists but was never published.
    AfterManifestWrite,
    /// After the `CURRENT` swap (durably published), before the in-memory
    /// snapshot installs. Reopening sees the *new* state.
    AfterPublish,
}

/// What one [`UpdatableXRank::commit`] did.
#[derive(Debug, Clone)]
pub struct CommitStats {
    /// Id of the sealed segment (`None` for an empty no-op commit).
    pub segment_id: Option<u64>,
    /// Documents made searchable.
    pub docs_added: usize,
    /// Tombstones added against older segments (replaced documents).
    pub tombstones_added: usize,
    /// The published manifest sequence number.
    pub seq: u64,
    /// Wall-clock time of the whole commit.
    pub wall: Duration,
    /// Per-stage timings (segment build, manifest swap).
    pub trace: Trace,
}

/// What one [`UpdatableXRank::compact`] / [`UpdatableXRank::merge_small`]
/// did.
#[derive(Debug, Clone)]
pub struct CompactStats {
    /// Segments folded away (0 when the fold was a no-op).
    pub segments_folded: usize,
    /// Live documents in the folded segment.
    pub docs_live: usize,
    /// Tombstoned postings physically dropped (tombstone GC).
    pub tombstones_dropped: usize,
    /// Power-iteration sweeps the rebuild's ElemRank took.
    pub rank_iterations: usize,
    /// Whether the rebuild's ElemRank was warm-started from the previous
    /// segments' rank vectors.
    pub rank_seeded: bool,
    /// The published manifest sequence number.
    pub seq: u64,
    /// Wall-clock time of the whole fold.
    pub wall: Duration,
    /// Per-stage timings (merge, segment build, manifest swap).
    pub trace: Trace,
}

/// A reader's lease on one published [`Snapshot`]: holding it guarantees
/// every segment, page, and tombstone set it references stays alive and
/// unchanged, no matter what writers publish meanwhile. Cheap (one `Arc`
/// clone + a gauge increment); drop releases the pin.
pub struct PinnedSnapshot {
    snap: Arc<Snapshot>,
    pins: Gauge,
}

impl std::ops::Deref for PinnedSnapshot {
    type Target = Snapshot;
    fn deref(&self) -> &Snapshot {
        &self.snap
    }
}

impl Drop for PinnedSnapshot {
    fn drop(&mut self) {
        self.pins.sub(1);
    }
}

/// Writer-side state, serialized under one mutex: staged documents and
/// the monotone name counters. Readers never take this lock.
struct WriterState {
    staged: BTreeMap<String, DocSource>,
    next_seq: u64,
    next_seg: u64,
    crash: Option<CrashPoint>,
    /// `Some` on durable pipelines with [`crate::WalConfig::enabled`]:
    /// every accepted mutation is framed here *before* it is applied.
    wal: Option<Wal>,
}

impl WriterState {
    /// Fires the armed crash point if it matches `at`.
    fn crash_if_armed(&mut self, at: CrashPoint) -> Result<(), UpdateError> {
        if self.crash == Some(at) {
            self.crash = None;
            return Err(UpdateError::InjectedCrash(at));
        }
        Ok(())
    }
}

/// An XRANK engine supporting document-granularity adds and deletes, with
/// snapshot-isolated concurrent reads (see the module docs for the
/// pipeline design). All methods take `&self`; share one instance across
/// threads behind an `Arc`.
pub struct UpdatableXRank {
    config: EngineConfig,
    /// Per-segment engine config (pipeline-level obs owns the metrics).
    seg_config: EngineConfig,
    /// `Some` for durable pipelines ([`UpdatableXRank::open`]).
    dir: Option<PathBuf>,
    /// The published snapshot. Writers swap the `Arc` under a brief write
    /// lock; readers clone it under a brief read lock and then never
    /// block again.
    current: RwLock<Arc<Snapshot>>,
    writer: Mutex<WriterState>,
    metrics: Arc<MetricsRegistry>,
    umetrics: UpdateMetrics,
    /// Shared flight recorder: every per-segment engine records its query
    /// ops here, and commits/compactions/swaps/GC/recovery land beside
    /// them on one timeline.
    recorder: Arc<FlightRecorder>,
    slow_op_log: SlowOpLog,
    /// Per-segment gauge series published on the last scrape (retired
    /// when compaction/GC deletes their segment).
    segment_series: Mutex<HashSet<String>>,
    /// Segments condemned by the integrity scrubber: their reads fail
    /// fast (or are skipped under `allow_partial`) until self-repair
    /// republishes a rebuilt replacement and releases the quarantine.
    quarantined: Mutex<HashSet<u64>>,
}

/// Resumable position of the online integrity scrub: the next pipeline
/// segment id and flat page offset to verify. `Default` starts at the
/// beginning; the [`crate::Scrubber`] worker threads one through its
/// throttled [`UpdatableXRank::scrub_chunk`] calls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubCursor {
    next_seg: u64,
    next_page: u64,
}

/// What one [`UpdatableXRank::scrub_chunk`] / [`UpdatableXRank::scrub_full`]
/// call did.
#[derive(Debug, Default, Clone)]
pub struct ScrubReport {
    /// Physical pages read back off the medium and verified.
    pub pages_scanned: u64,
    /// Segments whose verification failed — now quarantined.
    pub corrupt_segments: Vec<u64>,
    /// Whether the cursor completed a full pass over every live segment
    /// and wrapped back to the start.
    pub wrapped: bool,
}

/// Metric series name of the per-segment quarantine flag (retired when
/// repair releases the quarantine).
fn quarantine_series(seg_id: u64) -> String {
    format!("xrank_scrub_quarantined{{segment=\"{seg_id}\"}}")
}

/// Whether `uri` is live in `views` with exactly `src` as its source —
/// i.e. a logged add whose publish already landed (the crash fell between
/// the publish and the WAL checkpoint). Replaying such a record would
/// only tombstone-and-restage an already-visible document, so replay
/// skips it instead.
fn published_matches(views: &[SegmentView], uri: &str, src: &DocSource) -> bool {
    views
        .iter()
        .rev()
        .find(|v| v.contains_live(uri))
        .is_some_and(|v| v.seg.docs.get(uri) == Some(src))
}

/// Tombstones the newest live copy of `uri` in `views` (replay-time
/// re-derivation of a delete/replace). Returns whether anything changed.
fn tombstone_live(views: &mut [SegmentView], uri: &str) -> bool {
    if let Some(idx) = views.iter().rposition(|v| v.contains_live(uri)) {
        views[idx] = views[idx].with_tombstone(uri);
        true
    } else {
        false
    }
}

/// Rebuilds a sealed segment's engine store in place from its CRC-checked
/// docs sidecar (cold build through the same staged-write + atomic-swap
/// path as a fresh seal) — the boot-time self-repair primitive for a
/// segment whose open-time checksum scan failed.
fn rebuild_segment_store(
    seg_dir: &std::path::Path,
    docs: &BTreeMap<String, DocSource>,
    seg_config: &EngineConfig,
) -> Result<crate::engine::XRankEngine<FileStore>, UpdateError> {
    let mut builder = EngineBuilder::with_config(seg_config.clone());
    for (uri, src) in docs {
        match src {
            DocSource::Xml(xml) => builder.add_xml(uri, xml)?,
            DocSource::Html(html) => builder.add_html(uri, html),
        }
    }
    Ok(builder.build_persistent(seg_dir)?)
}

/// Cap on the over-fetch doublings of the tombstone re-fill loop: with
/// `m + 8` as the floor, six doublings cover a 64× over-fetch before the
/// search accepts an underfull page.
const MAX_REFILL_DOUBLINGS: usize = 6;

impl UpdatableXRank {
    /// An empty, ephemeral (in-memory segments) updatable engine.
    pub fn new(config: EngineConfig) -> Self {
        let recorder = Arc::new(FlightRecorder::new(config.obs.recorder.clone()));
        Self::assemble(config, None, Snapshot::empty(), 1, 1, BTreeMap::new(), None, recorder)
    }

    /// Opens (or initializes) a durable pipeline rooted at `dir`:
    /// recovers the last published manifest (a valid `CURRENT` is
    /// authoritative), reopens every referenced segment with a full
    /// checksum scan — rebuilding any segment that scan condemns from its
    /// CRC-checked docs sidecar — garbage-collects stranded pre-crash
    /// files, replays the write-ahead log (re-staging every acknowledged
    /// mutation the last publish did not cover), and resumes. A fresh
    /// directory starts empty.
    pub fn open(dir: impl AsRef<std::path::Path>, config: EngineConfig) -> Result<Self, UpdateError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let recorder = Arc::new(FlightRecorder::new(config.obs.recorder.clone()));
        let trace =
            if recorder.is_enabled() { QueryTrace::enabled() } else { QueryTrace::disabled() };
        let recovery_span = trace.span(Stage::Recovery);
        let published = manifest::load_published(&dir)?;
        let (mut next_seq, next_seg) = manifest::next_counters(&dir, &published);

        let mut seg_config = config.clone();
        seg_config.obs.metrics_enabled = false;
        seg_config.obs.recorder.enabled = false;

        let (mut seq, mut views) = match &published {
            None => (0, Vec::new()),
            Some(m) => {
                let mut views = Vec::with_capacity(m.segments.len());
                for ms in &m.segments {
                    let seg_dir = dir.join(manifest::segment_dir_name(ms.id));
                    let docs = manifest::read_docs_sidecar(&seg_dir)?;
                    let mut engine = match crate::engine::XRankEngine::<FileStore>::open(
                        &seg_dir,
                        seg_config.clone(),
                    ) {
                        Ok(engine) => engine,
                        Err(damage) => {
                            // The open-time checksum scan found the
                            // at-rest corruption the online scrubber
                            // hunts. Self-repair at boot: rebuild the
                            // store from the intact sidecar, then serve.
                            let span = trace.span(Stage::Repair);
                            let rebuilt =
                                rebuild_segment_store(&seg_dir, &docs, &seg_config)?;
                            drop(span);
                            recorder.record(
                                OpKind::Repair,
                                &format!("open-repair seg-{}: {damage}", ms.id),
                                trace.origin(),
                                OpOutcome::Ok,
                                &Trace::default(),
                            );
                            rebuilt
                        }
                    };
                    engine.set_recorder(Arc::clone(&recorder));
                    let seg = Arc::new(Segment::new(ms.id, AnyEngine::File(engine), docs));
                    views.push(SegmentView {
                        seg,
                        tombstones: Arc::new(ms.tombstones.iter().cloned().collect()),
                    });
                }
                (m.seq, views)
            }
        };
        let live: Vec<u64> = views.iter().map(|v| v.seg.id).collect();
        {
            let _gc = trace.span(Stage::Gc);
            manifest::gc(&dir, seq, &live);
        }

        // Write-ahead-log replay: every intact record is an accepted
        // mutation; anything the last published manifest does not cover
        // is re-applied — adds back into the staged set, deletes (and the
        // tombstone half of replaces) against the published views. Only
        // the LAST record per URI is applied (earlier ones were
        // superseded inside the lost batch), and an add whose exact
        // content is already live published is skipped — both make replay
        // idempotent no matter where between append and checkpoint the
        // crash fell.
        let mut staged: BTreeMap<String, DocSource> = BTreeMap::new();
        let mut wal = None;
        let mut replayed = 0u64;
        if config.wal.enabled {
            let wal_span = trace.span(Stage::WalAppend);
            let (mut log, records) = Wal::open(&dir, config.wal.sync)
                .map_err(|e| UpdateError::WalAppend(StorageError::io("wal open", e)))?;
            replayed = records.len() as u64;
            let mut last: BTreeMap<String, WalRecord> = BTreeMap::new();
            for rec in records {
                let uri = match &rec {
                    WalRecord::AddXml { uri, .. }
                    | WalRecord::AddHtml { uri, .. }
                    | WalRecord::Delete { uri } => uri.clone(),
                };
                last.insert(uri, rec);
            }
            let mut dirty = false;
            for rec in last.into_values() {
                match rec {
                    WalRecord::AddXml { uri, text } => {
                        let src = DocSource::Xml(text);
                        if !published_matches(&views, &uri, &src) {
                            dirty |= tombstone_live(&mut views, &uri);
                            staged.insert(uri, src);
                        }
                    }
                    WalRecord::AddHtml { uri, text } => {
                        let src = DocSource::Html(text);
                        if !published_matches(&views, &uri, &src) {
                            dirty |= tombstone_live(&mut views, &uri);
                            staged.insert(uri, src);
                        }
                    }
                    WalRecord::Delete { uri } => {
                        dirty |= tombstone_live(&mut views, &uri);
                    }
                }
            }
            if dirty {
                // Replayed deletes/replaces tombstoned documents the
                // last manifest still lists as live: publish one
                // recovery manifest so those tombstones are durable
                // before anything is served.
                let data = ManifestData {
                    seq: next_seq,
                    segments: views
                        .iter()
                        .map(|v| {
                            let mut tombstones: Vec<String> =
                                v.tombstones.iter().cloned().collect();
                            tombstones.sort_unstable();
                            ManifestSegment { id: v.seg.id, tombstones }
                        })
                        .collect(),
                };
                manifest::write_manifest(&dir, &data)?;
                manifest::publish_current(&dir, next_seq)?;
                seq = next_seq;
                next_seq += 1;
                manifest::gc(&dir, seq, &live);
            }
            // The published layout now covers everything beyond the
            // still-staged docs: shrink the log (best-effort — a failed
            // rewrite leaves the larger but still-correct one).
            let _ = log.checkpoint(&staged);
            wal = Some(log);
            drop(wal_span);
        }

        drop(recovery_span);
        if trace.is_enabled() {
            trace.event(Stage::Recovery, EventData::Count { what: "segments", n: live.len() as u64 });
            if replayed > 0 {
                trace.event(
                    Stage::WalAppend,
                    EventData::Count { what: "wal_replayed", n: replayed },
                );
            }
            let origin = trace.origin();
            recorder.record(
                OpKind::Recovery,
                &format!("recovery seq={seq}"),
                origin,
                OpOutcome::Ok,
                &trace.finish(),
            );
        }
        let pipeline = Self::assemble(
            config,
            Some(dir),
            Snapshot { seq, views },
            next_seq,
            next_seg,
            staged,
            wal,
            recorder,
        );
        pipeline.umetrics.wal_replayed.add(replayed);
        Ok(pipeline)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        config: EngineConfig,
        dir: Option<PathBuf>,
        snapshot: Snapshot,
        next_seq: u64,
        next_seg: u64,
        staged: BTreeMap<String, DocSource>,
        wal: Option<Wal>,
        recorder: Arc<FlightRecorder>,
    ) -> Self {
        let mut seg_config = config.clone();
        seg_config.obs.metrics_enabled = false;
        seg_config.obs.recorder.enabled = false;
        let metrics = Arc::new(if config.obs.metrics_enabled {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        let umetrics = UpdateMetrics::new(&metrics);
        umetrics.publish_shape(&snapshot, staged.len());
        let slow_op_log = SlowOpLog::new(&config.obs);
        UpdatableXRank {
            config,
            seg_config,
            dir,
            current: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(WriterState {
                staged,
                next_seq,
                next_seg,
                crash: None,
                wal,
            }),
            metrics,
            umetrics,
            recorder,
            slow_op_log,
            segment_series: Mutex::new(HashSet::new()),
            quarantined: Mutex::new(HashSet::new()),
        }
    }

    /// Pins the current published snapshot: the returned lease reads a
    /// frozen view of the index for as long as it is held, fully isolated
    /// from concurrent commits, deletes, and compactions.
    pub fn pin(&self) -> PinnedSnapshot {
        let snap = Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()));
        self.umetrics.snapshot_pins.add(1);
        PinnedSnapshot { snap, pins: self.umetrics.snapshot_pins.clone() }
    }

    /// Stages an XML document (validated now, searchable after
    /// [`UpdatableXRank::commit`]). Re-adding a live URI replaces it
    /// (immediate tombstone + staged add, matching the previous
    /// main+delta semantics). The accepted source is framed into the
    /// write-ahead log *before* anything is applied, so an acknowledged
    /// add survives a process kill even before the next commit.
    pub fn add_xml(&self, uri: &str, xml: &str) -> Result<(), UpdateError> {
        xrank_xml::parse(xml)?; // validate before accepting
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        self.wal_append(
            &mut w,
            &WalRecord::AddXml { uri: uri.to_string(), text: xml.to_string() },
        )?;
        self.delete_locked(&mut w, uri)?;
        w.staged.insert(uri.to_string(), DocSource::Xml(xml.to_string()));
        self.umetrics.staged_docs.set(w.staged.len() as i64);
        Ok(())
    }

    /// Stages an HTML page (write-ahead-logged like
    /// [`UpdatableXRank::add_xml`]).
    pub fn add_html(&self, uri: &str, html: &str) -> Result<(), UpdateError> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        self.wal_append(
            &mut w,
            &WalRecord::AddHtml { uri: uri.to_string(), text: html.to_string() },
        )?;
        self.delete_locked(&mut w, uri)?;
        w.staged.insert(uri.to_string(), DocSource::Html(html.to_string()));
        self.umetrics.staged_docs.set(w.staged.len() as i64);
        Ok(())
    }

    /// Tombstones a document immediately (also cancels a staged add).
    /// On a durable pipeline the tombstone is published through a new
    /// manifest generation before this returns. Returns whether anything
    /// was removed.
    pub fn delete(&self, uri: &str) -> Result<bool, UpdateError> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        self.wal_append(&mut w, &WalRecord::Delete { uri: uri.to_string() })?;
        let removed = self.delete_locked(&mut w, uri)?;
        // Whatever the delete touched is now durable (published manifest
        // or in-memory staged set): the log no longer needs the record.
        self.wal_checkpoint(&mut w);
        Ok(removed)
    }

    /// The tombstone/unstage half of a delete or replace, under the
    /// writer lock, *without* touching the write-ahead log — the caller
    /// has already framed its own record covering this.
    fn delete_locked(&self, w: &mut WriterState, uri: &str) -> Result<bool, UpdateError> {
        let was_staged = w.staged.remove(uri).is_some();
        if was_staged {
            self.umetrics.staged_docs.set(w.staged.len() as i64);
        }
        let cur = self.current_arc();
        let Some(idx) = cur.live_view_of(uri) else {
            return Ok(was_staged);
        };
        let mut views = cur.views.clone();
        views[idx] = views[idx].with_tombstone(uri);
        let trace =
            if self.recorder.is_enabled() { QueryTrace::enabled() } else { QueryTrace::disabled() };
        self.publish_locked(w, views, &trace)?;
        if trace.is_enabled() {
            let origin = trace.origin();
            self.recorder.record(
                OpKind::ManifestSwap,
                &format!("delete {uri}"),
                origin,
                OpOutcome::Ok,
                &trace.finish(),
            );
        }
        Ok(true)
    }

    /// Makes staged documents searchable by sealing them into the next
    /// segment and publishing a new snapshot. Readers in flight keep
    /// their pinned snapshot; new reads see the new one. With nothing
    /// staged this is a no-op.
    pub fn commit(&self) -> Result<CommitStats, UpdateError> {
        let start = Instant::now();
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if w.staged.is_empty() {
            return Ok(CommitStats {
                segment_id: None,
                docs_added: 0,
                tombstones_added: 0,
                seq: self.current_arc().seq,
                wall: start.elapsed(),
                trace: Trace::default(),
            });
        }
        let trace = QueryTrace::enabled();
        let origin = trace.origin();
        match self.commit_locked(&mut w, &trace, start) {
            Ok(mut stats) => {
                self.umetrics.commits.inc();
                self.umetrics
                    .commit_wall_us
                    .observe(stats.wall.as_secs_f64() * 1e6);
                stats.trace = trace.finish();
                let label = format!(
                    "commit seg-{} docs={} seq={}",
                    stats.segment_id.unwrap_or(0),
                    stats.docs_added,
                    stats.seq
                );
                self.recorder.record(OpKind::Commit, &label, origin, OpOutcome::Ok, &stats.trace);
                self.note_slow_op("commit", label, stats.wall, stats.seq, &stats.trace);
                Ok(stats)
            }
            Err(e) => {
                self.umetrics.commit_failures.inc();
                self.recorder.record(
                    OpKind::Commit,
                    &format!("commit failed: {e}"),
                    origin,
                    OpOutcome::Error,
                    &trace.finish(),
                );
                Err(e)
            }
        }
    }

    fn commit_locked(
        &self,
        w: &mut WriterState,
        trace: &QueryTrace,
        start: Instant,
    ) -> Result<CommitStats, UpdateError> {
        w.crash_if_armed(CrashPoint::DuringSegmentBuild)?;
        let docs = w.staged.clone();
        let seg_id = w.next_seg;

        let span = trace.span(Stage::SegmentBuild);
        let engine = self.build_segment(seg_id, &docs, None)?;
        drop(span);
        w.next_seg += 1;
        w.crash_if_armed(CrashPoint::AfterSegmentSeal)?;

        // Replaced documents: tombstone any older live copy so exactly
        // one copy of each URI is live across the snapshot. (Normally
        // `add_xml` already tombstoned it; this is the invariant's
        // backstop.)
        let cur = self.current_arc();
        let mut views = cur.views.clone();
        let mut tombstones_added = 0;
        for uri in docs.keys() {
            if let Some(idx) = cur.live_view_of(uri) {
                views[idx] = views[idx].with_tombstone(uri);
                tombstones_added += 1;
            }
        }
        let docs_added = docs.len();
        views.push(SegmentView::fresh(Arc::new(Segment::new(seg_id, engine, docs))));

        let seq = self.publish_locked(w, views, trace)?;
        w.staged.clear();
        self.umetrics.staged_docs.set(0);
        // The publish durably covers every logged mutation; shrink the
        // log down to the (now empty) staged set.
        let wal_span = trace.span(Stage::WalAppend);
        self.wal_checkpoint(w);
        drop(wal_span);
        Ok(CommitStats {
            segment_id: Some(seg_id),
            docs_added,
            tombstones_added,
            seq,
            wall: start.elapsed(),
            trace: Trace::default(),
        })
    }

    /// Folds **every** segment — plus any staged documents — into one:
    /// tombstoned postings are physically dropped, cross-segment
    /// hyperlinks re-resolve (the folded collection is one link-resolution
    /// scope again), and ElemRank is recomputed globally, warm-started
    /// from the previous segments' rank vectors.
    pub fn compact(&self) -> Result<CompactStats, UpdateError> {
        self.fold(FoldScope::Everything, None)
    }

    /// Background-compaction fold: merges segments no larger than
    /// `small_bytes` (at least two must qualify, else no-op), leaving big
    /// sealed segments untouched. Cancellable between phases via `cancel`
    /// — a cancelled fold publishes nothing and returns
    /// [`UpdateError::Cancelled`].
    pub fn merge_small(
        &self,
        small_bytes: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<CompactStats, UpdateError> {
        self.fold(FoldScope::SmallerThan(small_bytes), cancel)
    }

    fn fold(
        &self,
        scope: FoldScope,
        cancel: Option<&CancelToken>,
    ) -> Result<CompactStats, UpdateError> {
        let start = Instant::now();
        let trace = QueryTrace::enabled();
        let origin = trace.origin();
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        match self.fold_locked(&mut w, scope, cancel, &trace, start) {
            Ok(mut stats) => {
                stats.trace = trace.finish();
                if stats.segments_folded > 0 || stats.docs_live > 0 {
                    self.umetrics.compactions.inc();
                    self.umetrics
                        .compact_wall_us
                        .observe(stats.wall.as_secs_f64() * 1e6);
                    self.umetrics
                        .tombstones_gced
                        .add(stats.tombstones_dropped as u64);
                    let label = format!(
                        "compaction folded={} live={} seq={}",
                        stats.segments_folded, stats.docs_live, stats.seq
                    );
                    self.recorder.record(
                        OpKind::Compaction,
                        &label,
                        origin,
                        OpOutcome::Ok,
                        &stats.trace,
                    );
                    self.note_slow_op("compaction", label, stats.wall, stats.seq, &stats.trace);
                }
                Ok(stats)
            }
            Err(e) => {
                let outcome = if matches!(e, UpdateError::Cancelled) {
                    OpOutcome::Cancelled
                } else {
                    self.umetrics.compaction_failures.inc();
                    OpOutcome::Error
                };
                self.recorder.record(
                    OpKind::Compaction,
                    &format!("compaction {}: {e}", outcome.name()),
                    origin,
                    outcome,
                    &trace.finish(),
                );
                Err(e)
            }
        }
    }

    /// Offers a finished background op to the slow-op ring (the analogue
    /// of the engine's slow-query log for commits and compactions).
    fn note_slow_op(
        &self,
        kind: &'static str,
        label: String,
        elapsed: Duration,
        seq: u64,
        trace: &Trace,
    ) {
        if elapsed >= self.slow_op_log.threshold() {
            let captured = self.slow_op_log.offer(SlowOpEntry {
                kind,
                label,
                elapsed,
                seq,
                trace: trace.clone(),
            });
            if captured {
                self.umetrics.slow_ops.inc();
            }
        }
    }

    fn fold_locked(
        &self,
        w: &mut WriterState,
        scope: FoldScope,
        cancel: Option<&CancelToken>,
        trace: &QueryTrace,
        start: Instant,
    ) -> Result<CompactStats, UpdateError> {
        let check_cancel = |c: Option<&CancelToken>| -> Result<(), UpdateError> {
            match c {
                Some(t) if t.is_cancelled() => Err(UpdateError::Cancelled),
                _ => Ok(()),
            }
        };
        check_cancel(cancel)?;
        let cur = self.current_arc();

        let no_op = |wall: Duration| CompactStats {
            segments_folded: 0,
            docs_live: 0,
            tombstones_dropped: 0,
            rank_iterations: 0,
            rank_seeded: false,
            seq: cur.seq,
            wall,
            trace: Trace::default(),
        };

        let merge_span = trace.span(Stage::CompactMerge);
        // Staged docs are only cleared after a successful publish, so an
        // injected crash (or a real build failure) loses nothing.
        let (fold_idx, staged): (Vec<usize>, BTreeMap<String, DocSource>) = match scope {
            FoldScope::Everything => ((0..cur.views.len()).collect(), w.staged.clone()),
            FoldScope::SmallerThan(limit) => {
                let idx: Vec<usize> = cur
                    .views
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.seg.bytes <= limit)
                    .map(|(i, _)| i)
                    .collect();
                if idx.len() < 2 {
                    return Ok(no_op(start.elapsed()));
                }
                (idx, BTreeMap::new())
            }
        };
        let folds_staged = matches!(scope, FoldScope::Everything);
        // A full compact with nothing anywhere is a no-op.
        if fold_idx.is_empty() && staged.is_empty() {
            return Ok(no_op(start.elapsed()));
        }

        w.crash_if_armed(CrashPoint::DuringSegmentBuild)?;

        // Gather live documents (oldest segment first; staged adds win
        // last) and the warm-start rank seed from the folded engines.
        let mut docs: BTreeMap<String, DocSource> = BTreeMap::new();
        let mut tombstones_dropped = 0;
        let mut seed: HashMap<String, Vec<f64>> = HashMap::new();
        for &i in &fold_idx {
            let v = &cur.views[i];
            tombstones_dropped += v.tombstones.len();
            for (uri, src) in v.live_docs() {
                docs.insert(uri.clone(), src.clone());
            }
            v.seg.engine.rank_slices(&mut seed);
        }
        for (uri, src) in staged {
            docs.insert(uri, src);
        }
        let rank_seeded = !seed.is_empty();
        drop(merge_span);
        check_cancel(cancel)?;

        let mut new_view = None;
        let mut rank_iterations = 0;
        if !docs.is_empty() {
            let seg_id = w.next_seg;
            let span = trace.span(Stage::SegmentBuild);
            let engine = self.build_segment(seg_id, &docs, rank_seeded.then_some(seed))?;
            drop(span);
            w.next_seg += 1;
            rank_iterations = match &engine {
                AnyEngine::Mem(e) => e.rank_result().iterations,
                AnyEngine::File(e) => e.rank_result().iterations,
            };
            new_view = Some(SegmentView::fresh(Arc::new(Segment::new(seg_id, engine, docs.clone()))));
        }
        w.crash_if_armed(CrashPoint::AfterSegmentSeal)?;
        check_cancel(cancel)?;

        // The new segment takes the position of the oldest folded one;
        // untouched segments keep their order.
        let mut views = Vec::with_capacity(cur.views.len() + 1 - fold_idx.len());
        let insert_at = fold_idx.first().copied().unwrap_or(0);
        for (i, v) in cur.views.iter().enumerate() {
            if i == insert_at {
                if let Some(nv) = new_view.take() {
                    views.push(nv);
                }
            }
            if !fold_idx.contains(&i) {
                views.push(v.clone());
            }
        }
        if let Some(nv) = new_view.take() {
            views.push(nv);
        }

        let docs_live = docs.len();
        let seq = self.publish_locked(w, views, trace)?;
        if folds_staged {
            w.staged.clear();
        }
        self.umetrics.staged_docs.set(w.staged.len() as i64);
        let wal_span = trace.span(Stage::WalAppend);
        self.wal_checkpoint(w);
        drop(wal_span);
        Ok(CompactStats {
            segments_folded: fold_idx.len(),
            docs_live,
            tombstones_dropped,
            rank_iterations,
            rank_seeded,
            seq,
            wall: start.elapsed(),
            trace: Trace::default(),
        })
    }

    /// Builds one sealed segment over `docs` — in memory for ephemeral
    /// pipelines, through the crash-safe staged-write layout under
    /// `dir/seg-<id>/` for durable ones (document sidecar first, then the
    /// engine store, so a sealed directory is always complete).
    fn build_segment(
        &self,
        seg_id: u64,
        docs: &BTreeMap<String, DocSource>,
        seed: Option<HashMap<String, Vec<f64>>>,
    ) -> Result<AnyEngine, UpdateError> {
        let mut builder = EngineBuilder::with_config(self.seg_config.clone());
        if let Some(seed) = seed {
            builder.set_rank_seed(seed);
        }
        for (uri, src) in docs {
            match src {
                DocSource::Xml(xml) => builder.add_xml(uri, xml)?,
                DocSource::Html(html) => builder.add_html(uri, html),
            }
        }
        match &self.dir {
            None => {
                let mut engine = builder.build_with_store(MemStore::new())?;
                engine.set_recorder(Arc::clone(&self.recorder));
                Ok(AnyEngine::Mem(engine))
            }
            Some(dir) => {
                let seg_dir = dir.join(manifest::segment_dir_name(seg_id));
                std::fs::create_dir_all(&seg_dir)?;
                manifest::write_docs_sidecar(&seg_dir, docs)?;
                let mut engine = builder.build_persistent(&seg_dir)?;
                engine.set_recorder(Arc::clone(&self.recorder));
                Ok(AnyEngine::File(engine))
            }
        }
    }

    /// Publishes `views` as the next snapshot: durable manifest write +
    /// atomic `CURRENT` swap (durable pipelines), then the in-memory
    /// `Arc` swap, shape gauges, and best-effort GC. The caller holds the
    /// writer lock; readers are never blocked (they only take the
    /// `current` read lock for an `Arc` clone).
    fn publish_locked(
        &self,
        w: &mut WriterState,
        views: Vec<SegmentView>,
        trace: &QueryTrace,
    ) -> Result<u64, UpdateError> {
        let seq = w.next_seq;
        let span = trace.span(Stage::ManifestSwap);
        if let Some(dir) = &self.dir {
            let data = ManifestData {
                seq,
                segments: views
                    .iter()
                    .map(|v| {
                        let mut tombstones: Vec<String> =
                            v.tombstones.iter().cloned().collect();
                        tombstones.sort_unstable();
                        ManifestSegment { id: v.seg.id, tombstones }
                    })
                    .collect(),
            };
            manifest::write_manifest(dir, &data)?;
            w.crash_if_armed(CrashPoint::AfterManifestWrite)?;
            manifest::publish_current(dir, seq)?;
        } else {
            w.crash_if_armed(CrashPoint::AfterManifestWrite)?;
        }
        trace.event(Stage::ManifestSwap, EventData::Count { what: "manifest_seq", n: seq });
        drop(span);
        w.next_seq = seq + 1;
        // Durably published; a kill here loses only the in-memory install,
        // which reopening reconstructs from CURRENT.
        w.crash_if_armed(CrashPoint::AfterPublish)?;

        let snap = Arc::new(Snapshot { seq, views });
        self.umetrics.publish_shape(&snap, w.staged.len());
        let live: Vec<u64> = snap.views.iter().map(|v| v.seg.id).collect();
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = snap;
        if let Some(dir) = &self.dir {
            // GC is its own flight-recorder op: it runs after the swap is
            // visible and its cost should not be blamed on the publish span.
            let gc_trace = if self.recorder.is_enabled() {
                QueryTrace::enabled()
            } else {
                QueryTrace::disabled()
            };
            let gc_origin = gc_trace.origin();
            let gc_span = gc_trace.span(Stage::Gc);
            manifest::gc(dir, seq, &live);
            drop(gc_span);
            self.recorder.record(
                OpKind::Gc,
                &format!("gc seq={seq}"),
                gc_origin,
                OpOutcome::Ok,
                &gc_trace.finish(),
            );
        }
        Ok(seq)
    }

    /// Arms a deterministic crash point: the next mutation that reaches
    /// it stops dead with [`UpdateError::InjectedCrash`], modelling a
    /// process kill at that step (test hook; see the crash-injection
    /// suite).
    pub fn inject_crash(&self, at: CrashPoint) {
        self.writer.lock().unwrap_or_else(|e| e.into_inner()).crash = Some(at);
    }

    /// Appends one record to the write-ahead log (no-op for pipelines
    /// without one). On failure the caller must reject the mutation
    /// without applying anything — the contract behind
    /// [`UpdateError::WalAppend`]: an error here leaves at most a torn
    /// tail on disk, which replay drops.
    fn wal_append(&self, w: &mut WriterState, rec: &WalRecord) -> Result<(), UpdateError> {
        let Some(wal) = w.wal.as_mut() else { return Ok(()) };
        match wal.append(rec) {
            Ok(synced) => {
                self.umetrics.wal_appends.inc();
                if synced {
                    self.umetrics.wal_fsyncs.inc();
                }
                self.umetrics.wal_bytes.set(wal.len() as i64);
                Ok(())
            }
            Err(e) => {
                self.umetrics.wal_append_failures.inc();
                Err(UpdateError::WalAppend(StorageError::io("wal append", e)))
            }
        }
    }

    /// Rewrites the log down to the still-staged set once the state it
    /// protected is durable in the manifest layout. Best-effort: a failed
    /// checkpoint leaves a larger but still-correct log.
    fn wal_checkpoint(&self, w: &mut WriterState) {
        let WriterState { ref staged, ref mut wal, .. } = *w;
        let Some(wal) = wal.as_mut() else { return };
        if wal.checkpoint(staged).is_ok() {
            self.umetrics.wal_checkpoints.inc();
            self.umetrics.wal_bytes.set(wal.len() as i64);
        }
    }

    /// Arms (or clears with `None`) a deterministic write-ahead-log
    /// append fault: the targeted appends fail as if the device were full
    /// or broken, proving rejected mutations leave no trace (test hook,
    /// the WAL analogue of [`UpdatableXRank::inject_crash`]).
    pub fn wal_inject_fault(&self, fault: Option<WalFault>) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(wal) = w.wal.as_mut() {
            wal.set_fault(fault);
        }
    }

    /// Flushes any group-commit-buffered WAL appends to the device now
    /// (bounds the [`crate::SyncPolicy::GroupCommit`] loss window to this
    /// instant).
    pub fn wal_sync(&self) -> Result<(), UpdateError> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(wal) = w.wal.as_mut() {
            wal.sync()
                .map_err(|e| UpdateError::WalAppend(StorageError::io("wal sync", e)))?;
            self.umetrics.wal_fsyncs.inc();
        }
        Ok(())
    }

    /// Verifies up to `page_budget` physical pages of the live sealed
    /// segments, resuming from `cursor` (segments in id order, pages in
    /// flat order). The first damaged page *quarantines* its whole
    /// segment — reads fail fast with
    /// [`xrank_storage::StorageError::Quarantined`] (or degrade under
    /// `allow_partial`) until [`UpdatableXRank::repair_segment`]
    /// republishes a rebuilt replacement. Already-quarantined segments
    /// are skipped: repair, not re-scrubbing, clears them.
    pub fn scrub_chunk(&self, page_budget: u64, cursor: &mut ScrubCursor) -> ScrubReport {
        let pinned = self.pin();
        let mut report = ScrubReport::default();
        let trace =
            if self.recorder.is_enabled() { QueryTrace::enabled() } else { QueryTrace::disabled() };
        let origin = trace.origin();
        let span = trace.span(Stage::Scrub);
        let mut ordered: Vec<&SegmentView> = pinned.views.iter().collect();
        ordered.sort_by_key(|v| v.seg.id);
        let mut budget = page_budget;
        let mut exhausted = false;
        let resume_seg = cursor.next_seg;
        let resume_page = cursor.next_page;
        for v in ordered.into_iter().filter(|v| v.seg.id >= resume_seg) {
            if self.is_quarantined(v.seg.id) {
                continue;
            }
            let total = v.seg.engine.page_total();
            let start = if v.seg.id == resume_seg { resume_page.min(total) } else { 0 };
            for flat in start..total {
                if budget == 0 {
                    cursor.next_seg = v.seg.id;
                    cursor.next_page = flat;
                    exhausted = true;
                    break;
                }
                budget -= 1;
                report.pages_scanned += 1;
                if v.seg.engine.verify_page(flat).is_err() {
                    self.quarantine(v.seg.id);
                    report.corrupt_segments.push(v.seg.id);
                    trace.event(
                        Stage::Scrub,
                        EventData::Count { what: "quarantined_segment", n: v.seg.id },
                    );
                    break; // the segment is condemned; scan the next one
                }
            }
            if exhausted {
                break;
            }
        }
        if !exhausted {
            *cursor = ScrubCursor::default();
            report.wrapped = true;
            self.umetrics.scrub_passes.inc();
        }
        drop(span);
        self.umetrics.scrub_pages.add(report.pages_scanned);
        if !report.corrupt_segments.is_empty() {
            self.umetrics.scrub_corruptions.add(report.corrupt_segments.len() as u64);
            self.recorder.record(
                OpKind::Scrub,
                &format!("scrub quarantined {:?}", report.corrupt_segments),
                origin,
                OpOutcome::Error,
                &trace.finish(),
            );
        } else if report.wrapped && report.pages_scanned > 0 {
            self.recorder.record(
                OpKind::Scrub,
                &format!("scrub pass clean ({} pages)", report.pages_scanned),
                origin,
                OpOutcome::Ok,
                &trace.finish(),
            );
        }
        report
    }

    /// One unthrottled full verification pass over every live segment
    /// (the PR 3 open-time scan, online): scans everything, quarantines
    /// what fails.
    pub fn scrub_full(&self) -> ScrubReport {
        let mut cursor = ScrubCursor::default();
        self.scrub_chunk(u64::MAX, &mut cursor)
    }

    /// Quarantines a segment by pipeline id: its reads fail fast until
    /// repaired. Normally driven by the scrubber; public as a test hook
    /// and operator override. Returns whether the segment was newly
    /// quarantined.
    pub fn quarantine(&self, seg_id: u64) -> bool {
        let mut q = self.quarantined.lock().unwrap_or_else(|e| e.into_inner());
        let fresh = q.insert(seg_id);
        if fresh {
            self.umetrics.scrub_quarantined.set(q.len() as i64);
            self.metrics.gauge(&quarantine_series(seg_id)).set(1);
        }
        fresh
    }

    /// Releases a quarantine and retires its per-segment gauge series —
    /// the flag's identity dies with the quarantine, so scrapes never
    /// keep reporting a repaired segment.
    fn release_quarantine(&self, seg_id: u64) {
        let mut q = self.quarantined.lock().unwrap_or_else(|e| e.into_inner());
        if q.remove(&seg_id) {
            self.umetrics.scrub_quarantined.set(q.len() as i64);
            self.metrics.retire(&quarantine_series(seg_id));
        }
    }

    /// The currently quarantined segment ids, ascending.
    pub fn quarantined_segments(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .quarantined
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    fn is_quarantined(&self, seg_id: u64) -> bool {
        self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).contains(&seg_id)
    }

    /// Self-repair: rebuilds a quarantined segment's index from its
    /// in-memory document set (loaded from the CRC-checked docs sidecar)
    /// into a brand-new segment id, publishes the replacement with one
    /// atomic manifest swap, and releases the quarantine. Rebuilding
    /// *all* of the segment's documents — tombstoned ones included —
    /// preserves document order, Dewey IDs, and ElemRank inputs exactly,
    /// so a repaired commit-built segment serves bit-identical rankings;
    /// the replacement view keeps carrying the old tombstones. Returns
    /// `false` when the segment is no longer in the published snapshot
    /// (compacted away since quarantine — nothing left to repair).
    pub fn repair_segment(&self, seg_id: u64) -> Result<bool, UpdateError> {
        let start = Instant::now();
        let trace = QueryTrace::enabled();
        let origin = trace.origin();
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let cur = self.current_arc();
        let Some(pos) = cur.views.iter().position(|v| v.seg.id == seg_id) else {
            self.release_quarantine(seg_id);
            return Ok(false);
        };
        let docs = cur.views[pos].seg.docs.clone();
        let new_id = w.next_seg;
        let span = trace.span(Stage::Repair);
        let engine = match self.build_segment(new_id, &docs, None) {
            Ok(engine) => engine,
            Err(e) => {
                drop(span);
                self.recorder.record(
                    OpKind::Repair,
                    &format!("repair seg-{seg_id} failed: {e}"),
                    origin,
                    OpOutcome::Error,
                    &trace.finish(),
                );
                return Err(e);
            }
        };
        drop(span);
        w.next_seg += 1;
        let mut views = cur.views.clone();
        views[pos] = SegmentView {
            seg: Arc::new(Segment::new(new_id, engine, docs)),
            tombstones: Arc::clone(&cur.views[pos].tombstones),
        };
        match self.publish_locked(&mut w, views, &trace) {
            Ok(seq) => {
                self.release_quarantine(seg_id);
                self.umetrics.scrub_repairs.inc();
                let label = format!("repair seg-{seg_id} rebuilt as seg-{new_id} seq={seq}");
                let finished = trace.finish();
                self.recorder.record(OpKind::Repair, &label, origin, OpOutcome::Ok, &finished);
                self.note_slow_op("repair", label, start.elapsed(), seq, &finished);
                Ok(true)
            }
            Err(e) => {
                self.recorder.record(
                    OpKind::Repair,
                    &format!("repair seg-{seg_id} failed: {e}"),
                    origin,
                    OpOutcome::Error,
                    &trace.finish(),
                );
                Err(e)
            }
        }
    }

    /// Searches live documents across every segment of a pinned snapshot
    /// (tombstones filtered), merging by score. Takes `&self` and runs
    /// concurrently with commits and compactions. A storage fault in any
    /// segment surfaces as a typed [`QueryError`] for this query only.
    pub fn search(&self, query: &str, m: usize) -> Result<SearchResults, QueryError> {
        self.search_opts(query, m, QueryOptions::default())
    }

    /// [`UpdatableXRank::search`] with explicit options. A relative
    /// `timeout` is resolved to one absolute deadline *before* the first
    /// segment pass and shared by all passes — they are one query and get
    /// one time budget, not a fresh timeout each. `allow_partial` and
    /// `io_budget` apply to every pass; a degraded flag from any pass
    /// marks the merged result.
    ///
    /// Tombstone filtering happens at presentation time, so the per-pass
    /// fetch depth over-fetches (`m + 8`) and — when filtering leaves the
    /// merged page underfull while some segment still had a full raw page
    /// (i.e. more live hits may exist past the cut) — re-fetches deeper,
    /// doubling up to [`MAX_REFILL_DOUBLINGS`] times. A single heavily
    /// tombstoned document can therefore no longer starve the result
    /// page below `m` when `m` live results exist.
    pub fn search_opts(
        &self,
        query: &str,
        m: usize,
        opts: QueryOptions,
    ) -> Result<SearchResults, QueryError> {
        let start = Instant::now();
        let pinned = self.pin();
        let mut opts = opts;
        if let Some(shared) = opts.deadline() {
            opts.deadline_at = Some(shared);
            opts.timeout = None;
        }

        // Read the quarantine set once per query: a segment condemned by
        // the scrubber fails the query fast (typed, never garbage) — or,
        // under `allow_partial`, is skipped with the result marked
        // degraded while every healthy segment keeps serving.
        let quarantined: HashSet<u64> =
            self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).clone();

        let mut eval = xrank_query::EvalStats::default();
        let mut io = xrank_storage::IoStats::default();
        let mut degraded = None;
        let mut hits: Vec<(usize, SearchHit)> = Vec::new();
        let mut fetch = m.saturating_add(8);
        for attempt in 0..=MAX_REFILL_DOUBLINGS {
            hits.clear();
            let pass_opts = QueryOptions { top_m: fetch, ..opts.clone() };
            let mut any_saturated = false;
            for (vi, view) in pinned.views.iter().enumerate() {
                if quarantined.contains(&view.seg.id) {
                    if pass_opts.allow_partial {
                        if degraded.is_none() {
                            self.umetrics.degraded_quarantined.inc();
                        }
                        degraded = degraded.or(Some(DegradeReason::Quarantined));
                        continue;
                    }
                    return Err(QueryError::Storage(StorageError::Quarantined {
                        segment: view.seg.id,
                    }));
                }
                let mut r = view.seg.engine.query(query, Strategy::Hdil, &pass_opts)?;
                let raw = r.hits.len();
                eval.entries_scanned += r.eval.entries_scanned;
                eval.btree_probes += r.eval.btree_probes;
                io.seq_reads += r.io.seq_reads;
                io.rand_reads += r.io.rand_reads;
                io.cache_hits += r.io.cache_hits;
                degraded = degraded.or(r.degraded);
                r.hits.retain(|h| !view.tombstones.contains(&h.doc_uri));
                any_saturated |= raw >= fetch && r.hits.len() < raw;
                hits.extend(r.hits.into_iter().map(|h| (vi, h)));
            }
            if hits.len() >= m || !any_saturated || attempt == MAX_REFILL_DOUBLINGS {
                break;
            }
            // Underfull after tombstone filtering, and at least one
            // segment's raw page was both full and filtered — deeper live
            // hits may exist. Re-fill with a doubled fetch depth.
            fetch = fetch.saturating_mul(2);
        }

        hits.sort_by(|(va, a), (vb, b)| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.dewey.cmp(&b.dewey))
                .then_with(|| va.cmp(vb))
        });
        let mut hits: Vec<SearchHit> = hits.into_iter().map(|(_, h)| h).collect();
        hits.truncate(m);
        Ok(SearchResults { hits, eval, io, elapsed: start.elapsed(), trace: None, degraded })
    }

    fn current_arc(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of live (searchable or staged) documents.
    pub fn doc_count(&self) -> usize {
        let staged = self.writer.lock().unwrap_or_else(|e| e.into_inner()).staged.len();
        self.current_arc().live_doc_count() + staged
    }

    /// Number of staged (not yet searchable) documents.
    pub fn staged_count(&self) -> usize {
        self.writer.lock().unwrap_or_else(|e| e.into_inner()).staged.len()
    }

    /// Number of tombstoned documents awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.current_arc().tombstone_count()
    }

    /// Number of live segments in the published snapshot.
    pub fn segment_count(&self) -> usize {
        self.current_arc().segment_count()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The pipeline's metrics registry (segment lifecycle counters and
    /// gauges; shared with [`crate::Compactor`]).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The pipeline's flight recorder: one bounded timeline holding
    /// finished traces from queries, commits, compactions, manifest
    /// swaps, GC, and recovery.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Renders every retained flight-recorder op as Chrome trace-event
    /// JSON (loadable in `ui.perfetto.dev` / `chrome://tracing`).
    pub fn dump_trace_json(&self) -> String {
        xrank_obs::render_chrome_trace(&self.recorder.records())
    }

    /// The captured slow background ops (commits and compactions at
    /// least [`ObsConfig::slow_op_threshold`](crate::ObsConfig) slow),
    /// oldest first — the background-work analogue of
    /// [`crate::XRankEngine::slow_queries`].
    pub fn slow_ops(&self) -> Vec<SlowOpEntry> {
        self.slow_op_log.snapshot()
    }

    /// Prometheus text exposition with the snapshot-shape gauges freshly
    /// published.
    pub fn render_metrics(&self) -> String {
        let staged = self.staged_count();
        let snap = self.current_arc();
        self.umetrics.publish_shape(&snap, staged);
        // Per-segment shape series carry a transient identity: publish
        // the live set, then retire series for segments dropped by
        // compaction or GC so a scrape never reports deleted segments.
        let mut fresh = HashSet::new();
        for v in &snap.views {
            let series = [
                ("xrank_update_segment_docs", v.seg.docs.len() as i64),
                ("xrank_update_segment_tombstones", v.tombstones.len() as i64),
                ("xrank_update_segment_bytes", v.seg.bytes as i64),
            ];
            for (base, value) in series {
                let name = format!("{base}{{segment=\"{}\"}}", v.seg.id);
                self.metrics.gauge(&name).set(value);
                fresh.insert(name);
            }
        }
        let mut prev = self.segment_series.lock().unwrap_or_else(|e| e.into_inner());
        for stale in prev.difference(&fresh) {
            self.metrics.retire(stale);
        }
        *prev = fresh;
        drop(prev);
        self.metrics.render_prometheus()
    }
}

/// Which segments a fold covers.
#[derive(Clone, Copy)]
enum FoldScope {
    /// Every segment plus staged docs (full compaction).
    Everything,
    /// Only segments at most this many source bytes (background merge).
    SmallerThan(u64),
}
