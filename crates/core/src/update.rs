//! Document-granularity updates (paper, Section 4.5) as a crash-safe
//! segmented pipeline.
//!
//! "Document-granularity updates (i.e., adding or deleting documents) can
//! be handled exactly like in traditional inverted lists ... because DIL,
//! RDIL, and HDIL do not replicate ancestor information, and because the
//! first component of the Dewey IDs contains the document ID (which can be
//! used for deletion)."
//!
//! [`UpdatableXRank`] realizes that with an LSM-style pipeline of
//! immutable sealed segments behind an atomically-swapped, versioned,
//! CRC-checked manifest (see [`crate::snapshot`] and [`crate::manifest`]):
//!
//! * **adds** are staged and become searchable at
//!   [`UpdatableXRank::commit`], which builds the *next segment* off to
//!   the side (through the PR 3 staged-write + fsync + rename machinery
//!   when the pipeline is durable) and publishes it with a single
//!   manifest swap;
//! * **deletes** are immediate per-segment tombstones: hits from
//!   tombstoned documents are filtered at presentation time (the Dewey
//!   ID's leading document component identifies them) and their postings
//!   are physically dropped at the next compaction;
//! * **reads** pin a snapshot `Arc` for the whole query —
//!   [`UpdatableXRank::search`] takes `&self` and runs concurrently with
//!   any number of commits and compactions, which only ever publish *new*
//!   snapshots;
//! * [`UpdatableXRank::compact`] folds every segment (plus staged docs)
//!   into one: tombstoned postings disappear, cross-segment hyperlinks
//!   resolve, and ElemRank is recomputed globally — warm-started from the
//!   previous segments' rank vectors through the seeded CSR kernel
//!   ([`xrank_rank::elem_rank_seeded`]), so the rebuild converges in a
//!   fraction of the cold sweeps. [`UpdatableXRank::merge_small`] is the
//!   background variant folding only small segments (see
//!   [`crate::Compactor`]).
//!
//! Crash safety: every mutation builds its files off to the side and
//! publishes with one atomic `CURRENT` rename. Recovery
//! ([`UpdatableXRank::open`]) returns to the last *published* snapshot at
//! any kill point, which the deterministic [`CrashPoint`] injection hook
//! proves step by step (`crates/core/tests/update_crash.rs`).
//!
//! Element-granularity insertion (renumbering sibling Dewey IDs, paper's
//! reference [32]) is future work here exactly as it was in the paper.

use crate::engine::{EngineBuilder, EngineConfig, Strategy};
use crate::manifest::{self, ManifestData, ManifestSegment};
use crate::results::{SearchHit, SearchResults};
use crate::snapshot::{AnyEngine, DocSource, Segment, SegmentView, Snapshot};
use crate::telemetry::{SlowOpEntry, SlowOpLog, UpdateMetrics};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use xrank_obs::{
    EventData, FlightRecorder, Gauge, MetricsRegistry, OpKind, OpOutcome, QueryTrace, Stage, Trace,
};
use xrank_query::{CancelToken, QueryError, QueryOptions};
use xrank_storage::{FileStore, MemStore, StorageError};

/// Typed failure of an update-pipeline mutation. Queries keep their own
/// [`QueryError`]; this covers `commit`/`compact`/`delete`/`open`, which
/// touch the filesystem and rebuild indexes.
#[derive(Debug)]
pub enum UpdateError {
    /// An index build failed at the storage layer (failing or full device).
    Storage(StorageError),
    /// A filesystem operation on the segment/manifest layout failed.
    Io(std::io::Error),
    /// A staged document failed to re-parse at rebuild time.
    Xml(xrank_xml::XmlError),
    /// The deterministic crash-injection hook fired
    /// ([`UpdatableXRank::inject_crash`]): the mutation stopped dead at
    /// the armed step, exactly as a process kill there would, leaving
    /// the published state untouched.
    InjectedCrash(CrashPoint),
    /// A cancellable fold observed its [`CancelToken`] (pipeline
    /// shutdown) and stopped before publishing.
    Cancelled,
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Storage(e) => write!(f, "update storage error: {e}"),
            UpdateError::Io(e) => write!(f, "update I/O error: {e}"),
            UpdateError::Xml(e) => write!(f, "update XML error: {e}"),
            UpdateError::InjectedCrash(p) => write!(f, "injected crash at {p:?}"),
            UpdateError::Cancelled => write!(f, "update cancelled"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Storage(e) => Some(e),
            UpdateError::Io(e) => Some(e),
            UpdateError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for UpdateError {
    fn from(e: StorageError) -> Self {
        UpdateError::Storage(e)
    }
}

impl From<std::io::Error> for UpdateError {
    fn from(e: std::io::Error) -> Self {
        UpdateError::Io(e)
    }
}

impl From<xrank_xml::XmlError> for UpdateError {
    fn from(e: xrank_xml::XmlError) -> Self {
        UpdateError::Xml(e)
    }
}

/// Deterministic kill points of the commit/compaction protocol, for the
/// crash-injection harness (the update-pipeline analogue of the storage
/// crate's `FaultStore`). Arm one with [`UpdatableXRank::inject_crash`];
/// the next mutation stops dead there — no in-memory publish, no cleanup
/// — modelling a process kill at that step. Reopening the directory must
/// then recover the last *published* snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before the new segment's files are built (mid-segment-build).
    DuringSegmentBuild,
    /// After the segment sealed durably, before its manifest is written.
    AfterSegmentSeal,
    /// After `MANIFEST-<seq>` is written and fsynced, before the atomic
    /// `CURRENT` swap — the new manifest exists but was never published.
    AfterManifestWrite,
    /// After the `CURRENT` swap (durably published), before the in-memory
    /// snapshot installs. Reopening sees the *new* state.
    AfterPublish,
}

/// What one [`UpdatableXRank::commit`] did.
#[derive(Debug, Clone)]
pub struct CommitStats {
    /// Id of the sealed segment (`None` for an empty no-op commit).
    pub segment_id: Option<u64>,
    /// Documents made searchable.
    pub docs_added: usize,
    /// Tombstones added against older segments (replaced documents).
    pub tombstones_added: usize,
    /// The published manifest sequence number.
    pub seq: u64,
    /// Wall-clock time of the whole commit.
    pub wall: Duration,
    /// Per-stage timings (segment build, manifest swap).
    pub trace: Trace,
}

/// What one [`UpdatableXRank::compact`] / [`UpdatableXRank::merge_small`]
/// did.
#[derive(Debug, Clone)]
pub struct CompactStats {
    /// Segments folded away (0 when the fold was a no-op).
    pub segments_folded: usize,
    /// Live documents in the folded segment.
    pub docs_live: usize,
    /// Tombstoned postings physically dropped (tombstone GC).
    pub tombstones_dropped: usize,
    /// Power-iteration sweeps the rebuild's ElemRank took.
    pub rank_iterations: usize,
    /// Whether the rebuild's ElemRank was warm-started from the previous
    /// segments' rank vectors.
    pub rank_seeded: bool,
    /// The published manifest sequence number.
    pub seq: u64,
    /// Wall-clock time of the whole fold.
    pub wall: Duration,
    /// Per-stage timings (merge, segment build, manifest swap).
    pub trace: Trace,
}

/// A reader's lease on one published [`Snapshot`]: holding it guarantees
/// every segment, page, and tombstone set it references stays alive and
/// unchanged, no matter what writers publish meanwhile. Cheap (one `Arc`
/// clone + a gauge increment); drop releases the pin.
pub struct PinnedSnapshot {
    snap: Arc<Snapshot>,
    pins: Gauge,
}

impl std::ops::Deref for PinnedSnapshot {
    type Target = Snapshot;
    fn deref(&self) -> &Snapshot {
        &self.snap
    }
}

impl Drop for PinnedSnapshot {
    fn drop(&mut self) {
        self.pins.sub(1);
    }
}

/// Writer-side state, serialized under one mutex: staged documents and
/// the monotone name counters. Readers never take this lock.
struct WriterState {
    staged: BTreeMap<String, DocSource>,
    next_seq: u64,
    next_seg: u64,
    crash: Option<CrashPoint>,
}

impl WriterState {
    /// Fires the armed crash point if it matches `at`.
    fn crash_if_armed(&mut self, at: CrashPoint) -> Result<(), UpdateError> {
        if self.crash == Some(at) {
            self.crash = None;
            return Err(UpdateError::InjectedCrash(at));
        }
        Ok(())
    }
}

/// An XRANK engine supporting document-granularity adds and deletes, with
/// snapshot-isolated concurrent reads (see the module docs for the
/// pipeline design). All methods take `&self`; share one instance across
/// threads behind an `Arc`.
pub struct UpdatableXRank {
    config: EngineConfig,
    /// Per-segment engine config (pipeline-level obs owns the metrics).
    seg_config: EngineConfig,
    /// `Some` for durable pipelines ([`UpdatableXRank::open`]).
    dir: Option<PathBuf>,
    /// The published snapshot. Writers swap the `Arc` under a brief write
    /// lock; readers clone it under a brief read lock and then never
    /// block again.
    current: RwLock<Arc<Snapshot>>,
    writer: Mutex<WriterState>,
    metrics: Arc<MetricsRegistry>,
    umetrics: UpdateMetrics,
    /// Shared flight recorder: every per-segment engine records its query
    /// ops here, and commits/compactions/swaps/GC/recovery land beside
    /// them on one timeline.
    recorder: Arc<FlightRecorder>,
    slow_op_log: SlowOpLog,
    /// Per-segment gauge series published on the last scrape (retired
    /// when compaction/GC deletes their segment).
    segment_series: Mutex<HashSet<String>>,
}

/// Cap on the over-fetch doublings of the tombstone re-fill loop: with
/// `m + 8` as the floor, six doublings cover a 64× over-fetch before the
/// search accepts an underfull page.
const MAX_REFILL_DOUBLINGS: usize = 6;

impl UpdatableXRank {
    /// An empty, ephemeral (in-memory segments) updatable engine.
    pub fn new(config: EngineConfig) -> Self {
        let recorder = Arc::new(FlightRecorder::new(config.obs.recorder.clone()));
        Self::assemble(config, None, Snapshot::empty(), 1, 1, recorder)
    }

    /// Opens (or initializes) a durable pipeline rooted at `dir`:
    /// recovers the last published manifest (a valid `CURRENT` is
    /// authoritative), reopens every referenced segment with a full
    /// checksum scan, garbage-collects stranded pre-crash files, and
    /// resumes. A fresh directory starts empty.
    pub fn open(dir: impl AsRef<std::path::Path>, config: EngineConfig) -> Result<Self, UpdateError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let recorder = Arc::new(FlightRecorder::new(config.obs.recorder.clone()));
        let trace =
            if recorder.is_enabled() { QueryTrace::enabled() } else { QueryTrace::disabled() };
        let recovery_span = trace.span(Stage::Recovery);
        let published = manifest::load_published(&dir)?;
        let (next_seq, next_seg) = manifest::next_counters(&dir, &published);

        let mut seg_config = config.clone();
        seg_config.obs.metrics_enabled = false;
        seg_config.obs.recorder.enabled = false;

        let (seq, views) = match &published {
            None => (0, Vec::new()),
            Some(m) => {
                let mut views = Vec::with_capacity(m.segments.len());
                for ms in &m.segments {
                    let seg_dir = dir.join(manifest::segment_dir_name(ms.id));
                    let mut engine =
                        crate::engine::XRankEngine::<FileStore>::open(&seg_dir, seg_config.clone())?;
                    engine.set_recorder(Arc::clone(&recorder));
                    let docs = manifest::read_docs_sidecar(&seg_dir)?;
                    let seg = Arc::new(Segment::new(ms.id, AnyEngine::File(engine), docs));
                    views.push(SegmentView {
                        seg,
                        tombstones: Arc::new(ms.tombstones.iter().cloned().collect()),
                    });
                }
                (m.seq, views)
            }
        };
        let live: Vec<u64> = views.iter().map(|v| v.seg.id).collect();
        {
            let _gc = trace.span(Stage::Gc);
            manifest::gc(&dir, seq, &live);
        }
        drop(recovery_span);
        if trace.is_enabled() {
            trace.event(Stage::Recovery, EventData::Count { what: "segments", n: live.len() as u64 });
            let origin = trace.origin();
            recorder.record(
                OpKind::Recovery,
                &format!("recovery seq={seq}"),
                origin,
                OpOutcome::Ok,
                &trace.finish(),
            );
        }
        Ok(Self::assemble(config, Some(dir), Snapshot { seq, views }, next_seq, next_seg, recorder))
    }

    fn assemble(
        config: EngineConfig,
        dir: Option<PathBuf>,
        snapshot: Snapshot,
        next_seq: u64,
        next_seg: u64,
        recorder: Arc<FlightRecorder>,
    ) -> Self {
        let mut seg_config = config.clone();
        seg_config.obs.metrics_enabled = false;
        seg_config.obs.recorder.enabled = false;
        let metrics = Arc::new(if config.obs.metrics_enabled {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        let umetrics = UpdateMetrics::new(&metrics);
        umetrics.publish_shape(&snapshot, 0);
        let slow_op_log = SlowOpLog::new(&config.obs);
        UpdatableXRank {
            config,
            seg_config,
            dir,
            current: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(WriterState {
                staged: BTreeMap::new(),
                next_seq,
                next_seg,
                crash: None,
            }),
            metrics,
            umetrics,
            recorder,
            slow_op_log,
            segment_series: Mutex::new(HashSet::new()),
        }
    }

    /// Pins the current published snapshot: the returned lease reads a
    /// frozen view of the index for as long as it is held, fully isolated
    /// from concurrent commits, deletes, and compactions.
    pub fn pin(&self) -> PinnedSnapshot {
        let snap = Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()));
        self.umetrics.snapshot_pins.add(1);
        PinnedSnapshot { snap, pins: self.umetrics.snapshot_pins.clone() }
    }

    /// Stages an XML document (validated now, searchable after
    /// [`UpdatableXRank::commit`]). Re-adding a live URI replaces it
    /// (immediate tombstone + staged add, matching the previous
    /// main+delta semantics).
    pub fn add_xml(&self, uri: &str, xml: &str) -> Result<(), UpdateError> {
        xrank_xml::parse(xml)?; // validate before accepting
        self.delete(uri)?;
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        w.staged.insert(uri.to_string(), DocSource::Xml(xml.to_string()));
        self.umetrics.staged_docs.set(w.staged.len() as i64);
        Ok(())
    }

    /// Stages an HTML page.
    pub fn add_html(&self, uri: &str, html: &str) -> Result<(), UpdateError> {
        self.delete(uri)?;
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        w.staged.insert(uri.to_string(), DocSource::Html(html.to_string()));
        self.umetrics.staged_docs.set(w.staged.len() as i64);
        Ok(())
    }

    /// Tombstones a document immediately (also cancels a staged add).
    /// On a durable pipeline the tombstone is published through a new
    /// manifest generation before this returns. Returns whether anything
    /// was removed.
    pub fn delete(&self, uri: &str) -> Result<bool, UpdateError> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let was_staged = w.staged.remove(uri).is_some();
        if was_staged {
            self.umetrics.staged_docs.set(w.staged.len() as i64);
        }
        let cur = self.current_arc();
        let Some(idx) = cur.live_view_of(uri) else {
            return Ok(was_staged);
        };
        let mut views = cur.views.clone();
        views[idx] = views[idx].with_tombstone(uri);
        let trace =
            if self.recorder.is_enabled() { QueryTrace::enabled() } else { QueryTrace::disabled() };
        self.publish_locked(&mut w, views, &trace)?;
        if trace.is_enabled() {
            let origin = trace.origin();
            self.recorder.record(
                OpKind::ManifestSwap,
                &format!("delete {uri}"),
                origin,
                OpOutcome::Ok,
                &trace.finish(),
            );
        }
        Ok(true)
    }

    /// Makes staged documents searchable by sealing them into the next
    /// segment and publishing a new snapshot. Readers in flight keep
    /// their pinned snapshot; new reads see the new one. With nothing
    /// staged this is a no-op.
    pub fn commit(&self) -> Result<CommitStats, UpdateError> {
        let start = Instant::now();
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if w.staged.is_empty() {
            return Ok(CommitStats {
                segment_id: None,
                docs_added: 0,
                tombstones_added: 0,
                seq: self.current_arc().seq,
                wall: start.elapsed(),
                trace: Trace::default(),
            });
        }
        let trace = QueryTrace::enabled();
        let origin = trace.origin();
        match self.commit_locked(&mut w, &trace, start) {
            Ok(mut stats) => {
                self.umetrics.commits.inc();
                self.umetrics
                    .commit_wall_us
                    .observe(stats.wall.as_secs_f64() * 1e6);
                stats.trace = trace.finish();
                let label = format!(
                    "commit seg-{} docs={} seq={}",
                    stats.segment_id.unwrap_or(0),
                    stats.docs_added,
                    stats.seq
                );
                self.recorder.record(OpKind::Commit, &label, origin, OpOutcome::Ok, &stats.trace);
                self.note_slow_op("commit", label, stats.wall, stats.seq, &stats.trace);
                Ok(stats)
            }
            Err(e) => {
                self.umetrics.commit_failures.inc();
                self.recorder.record(
                    OpKind::Commit,
                    &format!("commit failed: {e}"),
                    origin,
                    OpOutcome::Error,
                    &trace.finish(),
                );
                Err(e)
            }
        }
    }

    fn commit_locked(
        &self,
        w: &mut WriterState,
        trace: &QueryTrace,
        start: Instant,
    ) -> Result<CommitStats, UpdateError> {
        w.crash_if_armed(CrashPoint::DuringSegmentBuild)?;
        let docs = w.staged.clone();
        let seg_id = w.next_seg;

        let span = trace.span(Stage::SegmentBuild);
        let engine = self.build_segment(seg_id, &docs, None)?;
        drop(span);
        w.next_seg += 1;
        w.crash_if_armed(CrashPoint::AfterSegmentSeal)?;

        // Replaced documents: tombstone any older live copy so exactly
        // one copy of each URI is live across the snapshot. (Normally
        // `add_xml` already tombstoned it; this is the invariant's
        // backstop.)
        let cur = self.current_arc();
        let mut views = cur.views.clone();
        let mut tombstones_added = 0;
        for uri in docs.keys() {
            if let Some(idx) = cur.live_view_of(uri) {
                views[idx] = views[idx].with_tombstone(uri);
                tombstones_added += 1;
            }
        }
        let docs_added = docs.len();
        views.push(SegmentView::fresh(Arc::new(Segment::new(seg_id, engine, docs))));

        let seq = self.publish_locked(w, views, trace)?;
        w.staged.clear();
        self.umetrics.staged_docs.set(0);
        Ok(CommitStats {
            segment_id: Some(seg_id),
            docs_added,
            tombstones_added,
            seq,
            wall: start.elapsed(),
            trace: Trace::default(),
        })
    }

    /// Folds **every** segment — plus any staged documents — into one:
    /// tombstoned postings are physically dropped, cross-segment
    /// hyperlinks re-resolve (the folded collection is one link-resolution
    /// scope again), and ElemRank is recomputed globally, warm-started
    /// from the previous segments' rank vectors.
    pub fn compact(&self) -> Result<CompactStats, UpdateError> {
        self.fold(FoldScope::Everything, None)
    }

    /// Background-compaction fold: merges segments no larger than
    /// `small_bytes` (at least two must qualify, else no-op), leaving big
    /// sealed segments untouched. Cancellable between phases via `cancel`
    /// — a cancelled fold publishes nothing and returns
    /// [`UpdateError::Cancelled`].
    pub fn merge_small(
        &self,
        small_bytes: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<CompactStats, UpdateError> {
        self.fold(FoldScope::SmallerThan(small_bytes), cancel)
    }

    fn fold(
        &self,
        scope: FoldScope,
        cancel: Option<&CancelToken>,
    ) -> Result<CompactStats, UpdateError> {
        let start = Instant::now();
        let trace = QueryTrace::enabled();
        let origin = trace.origin();
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        match self.fold_locked(&mut w, scope, cancel, &trace, start) {
            Ok(mut stats) => {
                stats.trace = trace.finish();
                if stats.segments_folded > 0 || stats.docs_live > 0 {
                    self.umetrics.compactions.inc();
                    self.umetrics
                        .compact_wall_us
                        .observe(stats.wall.as_secs_f64() * 1e6);
                    self.umetrics
                        .tombstones_gced
                        .add(stats.tombstones_dropped as u64);
                    let label = format!(
                        "compaction folded={} live={} seq={}",
                        stats.segments_folded, stats.docs_live, stats.seq
                    );
                    self.recorder.record(
                        OpKind::Compaction,
                        &label,
                        origin,
                        OpOutcome::Ok,
                        &stats.trace,
                    );
                    self.note_slow_op("compaction", label, stats.wall, stats.seq, &stats.trace);
                }
                Ok(stats)
            }
            Err(e) => {
                let outcome = if matches!(e, UpdateError::Cancelled) {
                    OpOutcome::Cancelled
                } else {
                    self.umetrics.compaction_failures.inc();
                    OpOutcome::Error
                };
                self.recorder.record(
                    OpKind::Compaction,
                    &format!("compaction {}: {e}", outcome.name()),
                    origin,
                    outcome,
                    &trace.finish(),
                );
                Err(e)
            }
        }
    }

    /// Offers a finished background op to the slow-op ring (the analogue
    /// of the engine's slow-query log for commits and compactions).
    fn note_slow_op(
        &self,
        kind: &'static str,
        label: String,
        elapsed: Duration,
        seq: u64,
        trace: &Trace,
    ) {
        if elapsed >= self.slow_op_log.threshold() {
            let captured = self.slow_op_log.offer(SlowOpEntry {
                kind,
                label,
                elapsed,
                seq,
                trace: trace.clone(),
            });
            if captured {
                self.umetrics.slow_ops.inc();
            }
        }
    }

    fn fold_locked(
        &self,
        w: &mut WriterState,
        scope: FoldScope,
        cancel: Option<&CancelToken>,
        trace: &QueryTrace,
        start: Instant,
    ) -> Result<CompactStats, UpdateError> {
        let check_cancel = |c: Option<&CancelToken>| -> Result<(), UpdateError> {
            match c {
                Some(t) if t.is_cancelled() => Err(UpdateError::Cancelled),
                _ => Ok(()),
            }
        };
        check_cancel(cancel)?;
        let cur = self.current_arc();

        let no_op = |wall: Duration| CompactStats {
            segments_folded: 0,
            docs_live: 0,
            tombstones_dropped: 0,
            rank_iterations: 0,
            rank_seeded: false,
            seq: cur.seq,
            wall,
            trace: Trace::default(),
        };

        let merge_span = trace.span(Stage::CompactMerge);
        // Staged docs are only cleared after a successful publish, so an
        // injected crash (or a real build failure) loses nothing.
        let (fold_idx, staged): (Vec<usize>, BTreeMap<String, DocSource>) = match scope {
            FoldScope::Everything => ((0..cur.views.len()).collect(), w.staged.clone()),
            FoldScope::SmallerThan(limit) => {
                let idx: Vec<usize> = cur
                    .views
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.seg.bytes <= limit)
                    .map(|(i, _)| i)
                    .collect();
                if idx.len() < 2 {
                    return Ok(no_op(start.elapsed()));
                }
                (idx, BTreeMap::new())
            }
        };
        let folds_staged = matches!(scope, FoldScope::Everything);
        // A full compact with nothing anywhere is a no-op.
        if fold_idx.is_empty() && staged.is_empty() {
            return Ok(no_op(start.elapsed()));
        }

        w.crash_if_armed(CrashPoint::DuringSegmentBuild)?;

        // Gather live documents (oldest segment first; staged adds win
        // last) and the warm-start rank seed from the folded engines.
        let mut docs: BTreeMap<String, DocSource> = BTreeMap::new();
        let mut tombstones_dropped = 0;
        let mut seed: HashMap<String, Vec<f64>> = HashMap::new();
        for &i in &fold_idx {
            let v = &cur.views[i];
            tombstones_dropped += v.tombstones.len();
            for (uri, src) in v.live_docs() {
                docs.insert(uri.clone(), src.clone());
            }
            v.seg.engine.rank_slices(&mut seed);
        }
        for (uri, src) in staged {
            docs.insert(uri, src);
        }
        let rank_seeded = !seed.is_empty();
        drop(merge_span);
        check_cancel(cancel)?;

        let mut new_view = None;
        let mut rank_iterations = 0;
        if !docs.is_empty() {
            let seg_id = w.next_seg;
            let span = trace.span(Stage::SegmentBuild);
            let engine = self.build_segment(seg_id, &docs, rank_seeded.then_some(seed))?;
            drop(span);
            w.next_seg += 1;
            rank_iterations = match &engine {
                AnyEngine::Mem(e) => e.rank_result().iterations,
                AnyEngine::File(e) => e.rank_result().iterations,
            };
            new_view = Some(SegmentView::fresh(Arc::new(Segment::new(seg_id, engine, docs.clone()))));
        }
        w.crash_if_armed(CrashPoint::AfterSegmentSeal)?;
        check_cancel(cancel)?;

        // The new segment takes the position of the oldest folded one;
        // untouched segments keep their order.
        let mut views = Vec::with_capacity(cur.views.len() + 1 - fold_idx.len());
        let insert_at = fold_idx.first().copied().unwrap_or(0);
        for (i, v) in cur.views.iter().enumerate() {
            if i == insert_at {
                if let Some(nv) = new_view.take() {
                    views.push(nv);
                }
            }
            if !fold_idx.contains(&i) {
                views.push(v.clone());
            }
        }
        if let Some(nv) = new_view.take() {
            views.push(nv);
        }

        let docs_live = docs.len();
        let seq = self.publish_locked(w, views, trace)?;
        if folds_staged {
            w.staged.clear();
        }
        self.umetrics.staged_docs.set(w.staged.len() as i64);
        Ok(CompactStats {
            segments_folded: fold_idx.len(),
            docs_live,
            tombstones_dropped,
            rank_iterations,
            rank_seeded,
            seq,
            wall: start.elapsed(),
            trace: Trace::default(),
        })
    }

    /// Builds one sealed segment over `docs` — in memory for ephemeral
    /// pipelines, through the crash-safe staged-write layout under
    /// `dir/seg-<id>/` for durable ones (document sidecar first, then the
    /// engine store, so a sealed directory is always complete).
    fn build_segment(
        &self,
        seg_id: u64,
        docs: &BTreeMap<String, DocSource>,
        seed: Option<HashMap<String, Vec<f64>>>,
    ) -> Result<AnyEngine, UpdateError> {
        let mut builder = EngineBuilder::with_config(self.seg_config.clone());
        if let Some(seed) = seed {
            builder.set_rank_seed(seed);
        }
        for (uri, src) in docs {
            match src {
                DocSource::Xml(xml) => builder.add_xml(uri, xml)?,
                DocSource::Html(html) => builder.add_html(uri, html),
            }
        }
        match &self.dir {
            None => {
                let mut engine = builder.build_with_store(MemStore::new())?;
                engine.set_recorder(Arc::clone(&self.recorder));
                Ok(AnyEngine::Mem(engine))
            }
            Some(dir) => {
                let seg_dir = dir.join(manifest::segment_dir_name(seg_id));
                std::fs::create_dir_all(&seg_dir)?;
                manifest::write_docs_sidecar(&seg_dir, docs)?;
                let mut engine = builder.build_persistent(&seg_dir)?;
                engine.set_recorder(Arc::clone(&self.recorder));
                Ok(AnyEngine::File(engine))
            }
        }
    }

    /// Publishes `views` as the next snapshot: durable manifest write +
    /// atomic `CURRENT` swap (durable pipelines), then the in-memory
    /// `Arc` swap, shape gauges, and best-effort GC. The caller holds the
    /// writer lock; readers are never blocked (they only take the
    /// `current` read lock for an `Arc` clone).
    fn publish_locked(
        &self,
        w: &mut WriterState,
        views: Vec<SegmentView>,
        trace: &QueryTrace,
    ) -> Result<u64, UpdateError> {
        let seq = w.next_seq;
        let span = trace.span(Stage::ManifestSwap);
        if let Some(dir) = &self.dir {
            let data = ManifestData {
                seq,
                segments: views
                    .iter()
                    .map(|v| {
                        let mut tombstones: Vec<String> =
                            v.tombstones.iter().cloned().collect();
                        tombstones.sort_unstable();
                        ManifestSegment { id: v.seg.id, tombstones }
                    })
                    .collect(),
            };
            manifest::write_manifest(dir, &data)?;
            w.crash_if_armed(CrashPoint::AfterManifestWrite)?;
            manifest::publish_current(dir, seq)?;
        } else {
            w.crash_if_armed(CrashPoint::AfterManifestWrite)?;
        }
        trace.event(Stage::ManifestSwap, EventData::Count { what: "manifest_seq", n: seq });
        drop(span);
        w.next_seq = seq + 1;
        // Durably published; a kill here loses only the in-memory install,
        // which reopening reconstructs from CURRENT.
        w.crash_if_armed(CrashPoint::AfterPublish)?;

        let snap = Arc::new(Snapshot { seq, views });
        self.umetrics.publish_shape(&snap, w.staged.len());
        let live: Vec<u64> = snap.views.iter().map(|v| v.seg.id).collect();
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = snap;
        if let Some(dir) = &self.dir {
            // GC is its own flight-recorder op: it runs after the swap is
            // visible and its cost should not be blamed on the publish span.
            let gc_trace = if self.recorder.is_enabled() {
                QueryTrace::enabled()
            } else {
                QueryTrace::disabled()
            };
            let gc_origin = gc_trace.origin();
            let gc_span = gc_trace.span(Stage::Gc);
            manifest::gc(dir, seq, &live);
            drop(gc_span);
            self.recorder.record(
                OpKind::Gc,
                &format!("gc seq={seq}"),
                gc_origin,
                OpOutcome::Ok,
                &gc_trace.finish(),
            );
        }
        Ok(seq)
    }

    /// Arms a deterministic crash point: the next mutation that reaches
    /// it stops dead with [`UpdateError::InjectedCrash`], modelling a
    /// process kill at that step (test hook; see the crash-injection
    /// suite).
    pub fn inject_crash(&self, at: CrashPoint) {
        self.writer.lock().unwrap_or_else(|e| e.into_inner()).crash = Some(at);
    }

    /// Searches live documents across every segment of a pinned snapshot
    /// (tombstones filtered), merging by score. Takes `&self` and runs
    /// concurrently with commits and compactions. A storage fault in any
    /// segment surfaces as a typed [`QueryError`] for this query only.
    pub fn search(&self, query: &str, m: usize) -> Result<SearchResults, QueryError> {
        self.search_opts(query, m, QueryOptions::default())
    }

    /// [`UpdatableXRank::search`] with explicit options. A relative
    /// `timeout` is resolved to one absolute deadline *before* the first
    /// segment pass and shared by all passes — they are one query and get
    /// one time budget, not a fresh timeout each. `allow_partial` and
    /// `io_budget` apply to every pass; a degraded flag from any pass
    /// marks the merged result.
    ///
    /// Tombstone filtering happens at presentation time, so the per-pass
    /// fetch depth over-fetches (`m + 8`) and — when filtering leaves the
    /// merged page underfull while some segment still had a full raw page
    /// (i.e. more live hits may exist past the cut) — re-fetches deeper,
    /// doubling up to [`MAX_REFILL_DOUBLINGS`] times. A single heavily
    /// tombstoned document can therefore no longer starve the result
    /// page below `m` when `m` live results exist.
    pub fn search_opts(
        &self,
        query: &str,
        m: usize,
        opts: QueryOptions,
    ) -> Result<SearchResults, QueryError> {
        let start = Instant::now();
        let pinned = self.pin();
        let mut opts = opts;
        if let Some(shared) = opts.deadline() {
            opts.deadline_at = Some(shared);
            opts.timeout = None;
        }

        let mut eval = xrank_query::EvalStats::default();
        let mut io = xrank_storage::IoStats::default();
        let mut degraded = None;
        let mut hits: Vec<(usize, SearchHit)> = Vec::new();
        let mut fetch = m.saturating_add(8);
        for attempt in 0..=MAX_REFILL_DOUBLINGS {
            hits.clear();
            let pass_opts = QueryOptions { top_m: fetch, ..opts.clone() };
            let mut any_saturated = false;
            for (vi, view) in pinned.views.iter().enumerate() {
                let mut r = view.seg.engine.query(query, Strategy::Hdil, &pass_opts)?;
                let raw = r.hits.len();
                eval.entries_scanned += r.eval.entries_scanned;
                eval.btree_probes += r.eval.btree_probes;
                io.seq_reads += r.io.seq_reads;
                io.rand_reads += r.io.rand_reads;
                io.cache_hits += r.io.cache_hits;
                degraded = degraded.or(r.degraded);
                r.hits.retain(|h| !view.tombstones.contains(&h.doc_uri));
                any_saturated |= raw >= fetch && r.hits.len() < raw;
                hits.extend(r.hits.into_iter().map(|h| (vi, h)));
            }
            if hits.len() >= m || !any_saturated || attempt == MAX_REFILL_DOUBLINGS {
                break;
            }
            // Underfull after tombstone filtering, and at least one
            // segment's raw page was both full and filtered — deeper live
            // hits may exist. Re-fill with a doubled fetch depth.
            fetch = fetch.saturating_mul(2);
        }

        hits.sort_by(|(va, a), (vb, b)| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.dewey.cmp(&b.dewey))
                .then_with(|| va.cmp(vb))
        });
        let mut hits: Vec<SearchHit> = hits.into_iter().map(|(_, h)| h).collect();
        hits.truncate(m);
        Ok(SearchResults { hits, eval, io, elapsed: start.elapsed(), trace: None, degraded })
    }

    fn current_arc(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of live (searchable or staged) documents.
    pub fn doc_count(&self) -> usize {
        let staged = self.writer.lock().unwrap_or_else(|e| e.into_inner()).staged.len();
        self.current_arc().live_doc_count() + staged
    }

    /// Number of staged (not yet searchable) documents.
    pub fn staged_count(&self) -> usize {
        self.writer.lock().unwrap_or_else(|e| e.into_inner()).staged.len()
    }

    /// Number of tombstoned documents awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.current_arc().tombstone_count()
    }

    /// Number of live segments in the published snapshot.
    pub fn segment_count(&self) -> usize {
        self.current_arc().segment_count()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The pipeline's metrics registry (segment lifecycle counters and
    /// gauges; shared with [`crate::Compactor`]).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The pipeline's flight recorder: one bounded timeline holding
    /// finished traces from queries, commits, compactions, manifest
    /// swaps, GC, and recovery.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Renders every retained flight-recorder op as Chrome trace-event
    /// JSON (loadable in `ui.perfetto.dev` / `chrome://tracing`).
    pub fn dump_trace_json(&self) -> String {
        xrank_obs::render_chrome_trace(&self.recorder.records())
    }

    /// The captured slow background ops (commits and compactions at
    /// least [`ObsConfig::slow_op_threshold`](crate::ObsConfig) slow),
    /// oldest first — the background-work analogue of
    /// [`crate::XRankEngine::slow_queries`].
    pub fn slow_ops(&self) -> Vec<SlowOpEntry> {
        self.slow_op_log.snapshot()
    }

    /// Prometheus text exposition with the snapshot-shape gauges freshly
    /// published.
    pub fn render_metrics(&self) -> String {
        let staged = self.staged_count();
        let snap = self.current_arc();
        self.umetrics.publish_shape(&snap, staged);
        // Per-segment shape series carry a transient identity: publish
        // the live set, then retire series for segments dropped by
        // compaction or GC so a scrape never reports deleted segments.
        let mut fresh = HashSet::new();
        for v in &snap.views {
            let series = [
                ("xrank_update_segment_docs", v.seg.docs.len() as i64),
                ("xrank_update_segment_tombstones", v.tombstones.len() as i64),
                ("xrank_update_segment_bytes", v.seg.bytes as i64),
            ];
            for (base, value) in series {
                let name = format!("{base}{{segment=\"{}\"}}", v.seg.id);
                self.metrics.gauge(&name).set(value);
                fresh.insert(name);
            }
        }
        let mut prev = self.segment_series.lock().unwrap_or_else(|e| e.into_inner());
        for stale in prev.difference(&fresh) {
            self.metrics.retire(stale);
        }
        *prev = fresh;
        drop(prev);
        self.metrics.render_prometheus()
    }
}

/// Which segments a fold covers.
#[derive(Clone, Copy)]
enum FoldScope {
    /// Every segment plus staged docs (full compaction).
    Everything,
    /// Only segments at most this many source bytes (background merge).
    SmallerThan(u64),
}
