//! Engine persistence: metadata file format, crash-safe commit, and
//! recovery-aware reopening.
//!
//! [`crate::EngineBuilder::build_persistent`] builds the index pages and
//! the metadata file (`xrank-meta.bin`, holding the collection, the
//! ElemRank vector, and the index directories) inside a staging directory
//! `dir/store.tmp/`, fsyncs everything, and then commits by renaming:
//!
//! ```text
//! dir/store      → dir/store.old     (previous index, kept until commit)
//! dir/store.tmp  → dir/store         (the atomic commit point)
//! ```
//!
//! A crash before the first rename leaves the previous `store/` intact; a
//! crash between the renames leaves `store.old/` intact; after the second
//! rename the new `store/` is complete. [`XRankEngine::open`] resolves in
//! that order (`store/`, then `store.old/`, then the pre-crash-safety
//! layout with the meta file beside `store/`), so *some* complete index is
//! always openable. Opening also verifies every page checksum so that
//! silent on-disk corruption fails loudly at open instead of poisoning
//! queries later.
//!
//! Settings that shape the *stored* data (rank parameters, weighting,
//! which indexes were built) are baked into the files; settings that only
//! shape query behaviour (query defaults, cost model, answer nodes, pool
//! size) come from the [`EngineConfig`] passed at open time.

use crate::engine::{EngineConfig, XRankEngine};
use std::collections::HashSet;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use xrank_graph::Collection;
use xrank_index::{HdilIndex, NaiveIdIndex, NaiveRankIndex, RdilIndex};
use xrank_rank::RankResult;
use xrank_storage::wire::{get_f64, get_u32, get_u64, put_f64, put_u32, put_u64};
use xrank_storage::{BufferPool, FileStore, PageStore};

const MAGIC: &[u8; 4] = b"XRKE";
/// Current meta-file version. v2 engines store checksummed pages and keep
/// the meta file inside the store directory; v3 engines write
/// block-compressed posting pages with per-list skip tables (the list
/// table tags each list with its page format, so stores holding
/// uncompressed lists keep opening and serving unchanged). All older metas
/// are still readable.
const VERSION: u32 = 3;
const OLDEST_READABLE_VERSION: u32 = 1;

/// The live store directory under the engine dir.
pub(crate) const STORE_DIR: &str = "store";
/// Staging directory a save builds into before the commit renames.
pub(crate) const STORE_TMP: &str = "store.tmp";
/// Where the previous index sits between the two commit renames.
pub(crate) const STORE_OLD: &str = "store.old";
/// The metadata file name (inside the store directory for v2 layouts,
/// beside it for legacy v1 layouts).
pub(crate) const META_FILE: &str = "xrank-meta.bin";

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("engine meta: {msg}"))
}

/// Fsyncs a directory so renames/creations inside it are durable.
pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Commits a fully-fsynced `dir/store.tmp/` over `dir/store/`. The rename
/// of `store.tmp` is the atomic commit point; the previous index survives
/// as `store.old/` until the commit lands, and [`XRankEngine::open`] falls
/// back to it if a crash strikes between the renames.
pub(crate) fn commit_store_swap(dir: &Path) -> io::Result<()> {
    let tmp = dir.join(STORE_TMP);
    let live = dir.join(STORE_DIR);
    let old = dir.join(STORE_OLD);
    fsync_dir(&tmp)?;
    if old.exists() {
        std::fs::remove_dir_all(&old)?;
    }
    if live.exists() {
        std::fs::rename(&live, &old)?;
    }
    std::fs::rename(&tmp, &live)?;
    fsync_dir(dir)?;
    // The commit has landed; the previous index and any legacy-layout meta
    // beside the store directory are now superseded. Best-effort cleanup.
    let _ = std::fs::remove_dir_all(&old);
    let _ = std::fs::remove_file(dir.join(META_FILE));
    Ok(())
}

impl<S: PageStore> XRankEngine<S> {
    /// Writes the metadata file next to a file-backed store.
    pub(crate) fn write_meta_file(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(MAGIC)?;
        put_u32(&mut w, VERSION)?;

        self.collection_ref().write_to(&mut w)?;

        // ElemRank result.
        let ranks = self.rank_result();
        put_u64(&mut w, ranks.scores.len() as u64)?;
        for &s in &ranks.scores {
            put_f64(&mut w, s)?;
        }
        put_u32(&mut w, ranks.iterations as u32)?;
        put_u32(&mut w, u32::from(ranks.converged))?;
        put_f64(&mut w, ranks.residual)?;

        // HTML-document set.
        let html = self.html_docs_ref();
        put_u32(&mut w, html.len() as u32)?;
        for &d in html {
            put_u32(&mut w, d)?;
        }

        // Index directories.
        self.hdil_ref().write_meta(&mut w)?;
        match self.rdil_ref() {
            Some(r) => {
                put_u32(&mut w, 1)?;
                r.write_meta(&mut w)?;
            }
            None => put_u32(&mut w, 0)?,
        }
        match (self.naive_id_ref(), self.naive_rank_ref()) {
            (Some(a), Some(b)) => {
                put_u32(&mut w, 1)?;
                a.write_meta(&mut w)?;
                b.write_meta(&mut w)?;
            }
            _ => put_u32(&mut w, 0)?,
        }
        w.flush()?;
        // Durability: the commit rename must never land before the meta
        // bytes it points at.
        w.get_ref().sync_all()
    }
}

impl XRankEngine<FileStore> {
    /// Reopens an engine built by
    /// [`crate::EngineBuilder::build_persistent`]. `config` supplies the
    /// query-time settings (its `with_rdil`/`with_naive`/`weighting` are
    /// ignored in favor of what is on disk).
    pub fn open(dir: impl AsRef<Path>, config: EngineConfig) -> io::Result<Self> {
        let dir = dir.as_ref();
        // Resolution order mirrors the commit protocol: the live store,
        // then the pre-commit snapshot a crash may have stranded, then the
        // legacy layout (meta beside the store directory).
        let candidates = [
            (dir.join(STORE_DIR), dir.join(STORE_DIR).join(META_FILE)),
            (dir.join(STORE_OLD), dir.join(STORE_OLD).join(META_FILE)),
            (dir.join(STORE_DIR), dir.join(META_FILE)),
        ];
        let Some((store_dir, meta_path)) =
            candidates.into_iter().find(|(_, meta)| meta.is_file())
        else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "no xrank index under {}: expected {STORE_DIR}/{META_FILE}, \
                     {STORE_OLD}/{META_FILE}, or legacy {META_FILE}",
                    dir.display()
                ),
            ));
        };
        Self::open_at(&store_dir, &meta_path, config)
    }

    fn open_at(store_dir: &Path, meta_path: &Path, config: EngineConfig) -> io::Result<Self> {
        let mut r = BufReader::new(std::fs::File::open(meta_path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = get_u32(&mut r)?;
        if !(OLDEST_READABLE_VERSION..=VERSION).contains(&version) {
            return Err(bad(&format!(
                "unsupported version {version} (this build reads \
                 {OLDEST_READABLE_VERSION}..={VERSION})"
            )));
        }

        let collection = Collection::read_from(&mut r)?;

        let n_scores = get_u64(&mut r)?;
        if n_scores != collection.element_count() as u64 {
            return Err(bad("rank vector does not match the collection"));
        }
        let mut scores = Vec::with_capacity(n_scores as usize);
        for _ in 0..n_scores {
            scores.push(get_f64(&mut r)?);
        }
        let iterations = get_u32(&mut r)? as usize;
        let converged = get_u32(&mut r)? != 0;
        let residual = get_f64(&mut r)?;
        let ranks = RankResult { scores, iterations, converged, residual };

        let n_html = get_u32(&mut r)?;
        let mut html_docs = HashSet::with_capacity(n_html as usize);
        for _ in 0..n_html {
            html_docs.insert(get_u32(&mut r)?);
        }

        let hdil = HdilIndex::read_meta(&mut r)?;
        let rdil = match get_u32(&mut r)? {
            0 => None,
            1 => Some(RdilIndex::read_meta(&mut r)?),
            k => return Err(bad(&format!("bad rdil tag {k}"))),
        };
        let (naive_id, naive_rank) = match get_u32(&mut r)? {
            0 => (None, None),
            1 => (
                Some(NaiveIdIndex::read_meta(&mut r)?),
                Some(NaiveRankIndex::read_meta(&mut r)?),
            ),
            k => return Err(bad(&format!("bad naive tag {k}"))),
        };

        let store = FileStore::open(store_dir)?;
        // Full checksum scan: a bit-flipped or truncated segment fails the
        // open with a descriptive error instead of surfacing mid-query.
        store.verify().map_err(io::Error::from)?;
        let mut pool = BufferPool::new(store, config.pool_pages);
        pool.set_fault_policy(config.fault_policy);
        Ok(XRankEngine::from_parts(
            config, collection, ranks, pool, hdil, rdil, naive_id, naive_rank, html_docs,
        ))
    }
}
