//! Engine persistence: metadata file format and reopening.
//!
//! [`crate::EngineBuilder::build_persistent`] writes the index pages to
//! real files (one per segment under `dir/store/`) and everything the
//! engine needs at query time — the collection, the ElemRank vector, the
//! index directories — to `dir/xrank-meta.bin`. [`XRankEngine::open`]
//! restores the engine without re-parsing, re-ranking, or re-indexing.
//!
//! Settings that shape the *stored* data (rank parameters, weighting,
//! which indexes were built) are baked into the files; settings that only
//! shape query behaviour (query defaults, cost model, answer nodes, pool
//! size) come from the [`EngineConfig`] passed at open time.

use crate::engine::{EngineConfig, XRankEngine};
use std::collections::HashSet;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use xrank_graph::Collection;
use xrank_index::{HdilIndex, NaiveIdIndex, NaiveRankIndex, RdilIndex};
use xrank_rank::RankResult;
use xrank_storage::wire::{get_f64, get_u32, get_u64, put_f64, put_u32, put_u64};
use xrank_storage::{BufferPool, FileStore, PageStore};

const MAGIC: &[u8; 4] = b"XRKE";
const VERSION: u32 = 1;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("engine meta: {msg}"))
}

impl<S: PageStore> XRankEngine<S> {
    /// Writes the metadata file next to a file-backed store.
    pub(crate) fn write_meta_file(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(MAGIC)?;
        put_u32(&mut w, VERSION)?;

        self.collection_ref().write_to(&mut w)?;

        // ElemRank result.
        let ranks = self.rank_result();
        put_u64(&mut w, ranks.scores.len() as u64)?;
        for &s in &ranks.scores {
            put_f64(&mut w, s)?;
        }
        put_u32(&mut w, ranks.iterations as u32)?;
        put_u32(&mut w, u32::from(ranks.converged))?;
        put_f64(&mut w, ranks.residual)?;

        // HTML-document set.
        let html = self.html_docs_ref();
        put_u32(&mut w, html.len() as u32)?;
        for &d in html {
            put_u32(&mut w, d)?;
        }

        // Index directories.
        self.hdil_ref().write_meta(&mut w)?;
        match self.rdil_ref() {
            Some(r) => {
                put_u32(&mut w, 1)?;
                r.write_meta(&mut w)?;
            }
            None => put_u32(&mut w, 0)?,
        }
        match (self.naive_id_ref(), self.naive_rank_ref()) {
            (Some(a), Some(b)) => {
                put_u32(&mut w, 1)?;
                a.write_meta(&mut w)?;
                b.write_meta(&mut w)?;
            }
            _ => put_u32(&mut w, 0)?,
        }
        w.flush()
    }
}

impl XRankEngine<FileStore> {
    /// Reopens an engine built by
    /// [`crate::EngineBuilder::build_persistent`]. `config` supplies the
    /// query-time settings (its `with_rdil`/`with_naive`/`weighting` are
    /// ignored in favor of what is on disk).
    pub fn open(dir: impl AsRef<Path>, config: EngineConfig) -> io::Result<Self> {
        let dir = dir.as_ref();
        let mut r = BufReader::new(std::fs::File::open(dir.join("xrank-meta.bin"))?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = get_u32(&mut r)?;
        if version != VERSION {
            return Err(bad(&format!("unsupported version {version}")));
        }

        let collection = Collection::read_from(&mut r)?;

        let n_scores = get_u64(&mut r)?;
        if n_scores != collection.element_count() as u64 {
            return Err(bad("rank vector does not match the collection"));
        }
        let mut scores = Vec::with_capacity(n_scores as usize);
        for _ in 0..n_scores {
            scores.push(get_f64(&mut r)?);
        }
        let iterations = get_u32(&mut r)? as usize;
        let converged = get_u32(&mut r)? != 0;
        let residual = get_f64(&mut r)?;
        let ranks = RankResult { scores, iterations, converged, residual };

        let n_html = get_u32(&mut r)?;
        let mut html_docs = HashSet::with_capacity(n_html as usize);
        for _ in 0..n_html {
            html_docs.insert(get_u32(&mut r)?);
        }

        let hdil = HdilIndex::read_meta(&mut r)?;
        let rdil = match get_u32(&mut r)? {
            0 => None,
            1 => Some(RdilIndex::read_meta(&mut r)?),
            k => return Err(bad(&format!("bad rdil tag {k}"))),
        };
        let (naive_id, naive_rank) = match get_u32(&mut r)? {
            0 => (None, None),
            1 => (
                Some(NaiveIdIndex::read_meta(&mut r)?),
                Some(NaiveRankIndex::read_meta(&mut r)?),
            ),
            k => return Err(bad(&format!("bad naive tag {k}"))),
        };

        let store = FileStore::open(dir.join("store"))?;
        let pool = BufferPool::new(store, config.pool_pages);
        Ok(XRankEngine::from_parts(
            config, collection, ranks, pool, hdil, rdil, naive_id, naive_rank, html_docs,
        ))
    }
}
