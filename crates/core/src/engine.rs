//! Engine assembly and the search entry point.

use crate::results::{SearchHit, SearchResults};
use crate::telemetry::{
    strategy_label, EngineMetrics, Explain, ObsConfig, SlowQueryEntry, SlowQueryLog, ANY_SLOT,
};
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};
use xrank_graph::{Collection, CollectionBuilder, ElemId, LinkSpec, TermId};
use xrank_index::{
    direct_postings_weighted, naive_postings, HdilIndex, NaiveIdIndex, NaiveRankIndex,
    RankWeighting, RdilIndex,
};
use xrank_obs::{
    EventData, FlightRecorder, MetricsRegistry, OpKind, OpOutcome, QueryTrace, Stage,
};
use xrank_query::{dil_query, hdil_query, naive_query, rdil_query, QueryError, QueryOptions};
use xrank_rank::{elem_rank_seeded, ElemRankParams, RankResult};
use xrank_storage::{
    BufferPool, CostModel, FaultPolicy, FileStore, MemStore, PageStore, StatsScope, StorageResult,
};

/// Flight-record label for a query op: `query[strategy] text`, with the
/// text clipped so a pathological query can't bloat the ring.
fn op_label(strategy: &str, query: &str) -> String {
    const MAX_QUERY: usize = 80;
    let clipped = match query.char_indices().nth(MAX_QUERY) {
        Some((i, _)) => &query[..i],
        None => query,
    };
    format!("query[{strategy}] {clipped}")
}

/// Which evaluation strategy [`XRankEngine::search_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Figure 5 single-pass merge over Dewey-sorted lists.
    Dil,
    /// Figure 7 Threshold-Algorithm evaluation (requires `with_rdil`).
    Rdil,
    /// Section 4.4.2 adaptive strategy (the default).
    Hdil,
    /// Naive equality merge baseline (requires `with_naive`).
    NaiveId,
    /// Naive TA + hash probes baseline (requires `with_naive`).
    NaiveRank,
}

/// Result filtering per Section 2.2.
#[derive(Debug, Clone, Default)]
pub enum AnswerNodes {
    /// Every element may be a result ("If such knowledge is not available,
    /// all XML elements can be treated as answer nodes").
    #[default]
    All,
    /// Only elements with these tag names may be results; deeper matches
    /// are promoted to their closest answer-node ancestor.
    Tags(HashSet<String>),
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// ElemRank parameters (paper defaults).
    pub rank_params: ElemRankParams,
    /// Default query options (decay, aggregation, proximity, m).
    pub query: QueryOptions,
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
    /// Simulated I/O cost model (drives HDIL's adaptive switch).
    pub cost_model: CostModel,
    /// Build the standalone RDIL index too (the engine always builds HDIL,
    /// which already serves the `Dil` strategy through its full list).
    pub with_rdil: bool,
    /// Build the naive baselines too (space-hungry; experiments only).
    pub with_naive: bool,
    /// Answer-node restriction.
    pub answer_nodes: AnswerNodes,
    /// Hyperlink attribute conventions.
    pub link_spec: LinkSpec,
    /// Rank source for postings (ElemRank, tf-idf, or a blend — the
    /// Section 7 tf-idf extension).
    pub weighting: RankWeighting,
    /// Observability: metrics gating, slow-query log threshold/capacity.
    pub obs: ObsConfig,
    /// Engine-level concurrency backstop: the maximum number of queries
    /// evaluating simultaneously through [`XRankEngine::query`]. `0`
    /// (default) means unbounded; a positive value makes excess callers
    /// wait — the executor's admission policy is the place to shed, this
    /// is the last line of defense for direct callers.
    pub max_in_flight: usize,
    /// Retry and circuit-breaker behavior for physical page reads
    /// (defaults to fully disabled: every fault surfaces immediately).
    pub fault_policy: FaultPolicy,
    /// Write-ahead log for sub-commit durability of staged documents
    /// (durable update pipelines only; see [`crate::SyncPolicy`]).
    pub wal: crate::wal::WalConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            rank_params: ElemRankParams::default(),
            query: QueryOptions::default(),
            pool_pages: 4096,
            cost_model: CostModel::default(),
            with_rdil: false,
            with_naive: false,
            answer_nodes: AnswerNodes::All,
            link_spec: LinkSpec::default(),
            weighting: RankWeighting::ElemRank,
            obs: ObsConfig::default(),
            max_in_flight: 0,
            fault_policy: FaultPolicy::default(),
            wal: crate::wal::WalConfig::default(),
        }
    }
}

/// Accumulates documents, then builds an [`XRankEngine`].
pub struct EngineBuilder {
    config: EngineConfig,
    collection: CollectionBuilder,
    html_docs: HashSet<u32>,
    rank_seed: Option<std::collections::HashMap<String, Vec<f64>>>,
}

impl EngineBuilder {
    /// Builder with default configuration.
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Builder with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let collection = CollectionBuilder::with_spec(config.link_spec.clone());
        EngineBuilder { config, collection, html_docs: HashSet::new(), rank_seed: None }
    }

    /// Warm-starts the build-time ElemRank power iteration from a previous
    /// index generation's rank vector: `seed` maps a document URI to that
    /// document's per-element scores in element-id order (root first, the
    /// order [`xrank_graph::DocInfo::element_count`] spans). Documents
    /// absent from the map — and documents whose element count changed —
    /// start from the random-jump mass for their slice. The converged
    /// scores do not depend on the seed (the fixed point is unique); a good
    /// seed only reduces the number of sweeps. Used by the update
    /// pipeline's compactor, which folds segments whose contents mostly
    /// overlap the merged result.
    pub fn set_rank_seed(&mut self, seed: std::collections::HashMap<String, Vec<f64>>) {
        self.rank_seed = Some(seed);
    }

    /// Sets the worker-thread count for the ElemRank power iteration run
    /// at build time: `0` auto-detects (the `XRANK_THREADS` env var if
    /// set, else available parallelism scaled to the collection size),
    /// `1` forces the exact single-threaded computation. Scores are
    /// deterministic regardless of the value (see DESIGN.md, "ElemRank
    /// kernel").
    pub fn rank_threads(mut self, threads: usize) -> Self {
        self.config.rank_params.threads = threads;
        self
    }

    /// Adds an XML document.
    pub fn add_xml(&mut self, uri: &str, xml: &str) -> Result<(), xrank_xml::XmlError> {
        self.collection.add_xml_str(uri, xml)?;
        Ok(())
    }

    /// Adds an HTML page (flattened to a single element; only the whole
    /// page can be a result, per Section 2.2).
    pub fn add_html(&mut self, uri: &str, html: &str) {
        let page = xrank_xml::html::parse_html(html);
        let doc = self.collection.add_html_document(uri, "page", &page);
        self.html_docs.insert(doc);
    }

    /// Resolves links, computes ElemRank, and builds the indexes
    /// in memory.
    pub fn build(self) -> XRankEngine {
        self.build_with_store(MemStore::new())
            .expect("in-memory index build cannot hit I/O faults")
    }

    /// Builds into a persistent directory with a crash-safe commit: index
    /// pages and the engine metadata (`xrank-meta.bin`) are written to
    /// `dir/store.tmp/`, fsynced, and atomically renamed over `dir/store/`.
    /// A crash at any point leaves either the previous index or the new
    /// one openable with [`XRankEngine::open`] — never a half-written mix.
    pub fn build_persistent(
        self,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<XRankEngine<FileStore>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(crate::persist::STORE_TMP);
        if tmp.exists() {
            // Leftover from an interrupted save; it was never committed.
            std::fs::remove_dir_all(&tmp)?;
        }
        let store = FileStore::open(&tmp)?;
        let engine = self.build_with_store(store)?;
        engine.write_meta_file(&tmp.join(crate::persist::META_FILE))?;
        engine.pool().store().sync()?;
        crate::persist::commit_store_swap(dir)?;
        Ok(engine)
    }

    /// Builds against an arbitrary page store. Fallible: every index page
    /// goes through the store, so a failing or full device surfaces as a
    /// typed [`xrank_storage::StorageError`] instead of a panic.
    pub fn build_with_store<S: PageStore>(self, store: S) -> StorageResult<XRankEngine<S>> {
        let collection = self.collection.build();
        let seed = self.rank_seed.as_ref().and_then(|map| {
            // Assemble the full-length start vector from per-document
            // slices: a document's elements are contiguous in ElemId order
            // (`[root, root + element_count)`), so the old scores drop
            // straight into place. Unmatched documents get uniform
            // per-document jump mass (the final formula's cold start for
            // that slice); if nothing matches, skip seeding entirely.
            let n = collection.element_count();
            let nd = collection.doc_count() as f64;
            let mut init = vec![0.0f64; n];
            let mut matched = false;
            for doc in collection.docs() {
                let lo = doc.root as usize;
                let hi = lo + doc.element_count as usize;
                match map.get(&doc.uri) {
                    Some(old) if old.len() == doc.element_count as usize => {
                        init[lo..hi].copy_from_slice(old);
                        matched = true;
                    }
                    _ => {
                        let mass = 1.0 / (nd * doc.element_count as f64);
                        init[lo..hi].fill(mass);
                    }
                }
            }
            matched.then_some(init)
        });
        let ranks = elem_rank_seeded(&collection, &self.config.rank_params, seed);
        let mut pool = BufferPool::new(store, self.config.pool_pages);
        pool.set_fault_policy(self.config.fault_policy);

        let direct = direct_postings_weighted(&collection, &ranks.scores, self.config.weighting);
        let hdil = HdilIndex::build(&mut pool, &direct)?;
        let rdil = if self.config.with_rdil {
            Some(RdilIndex::build(&mut pool, &direct)?)
        } else {
            None
        };
        let (naive_id, naive_rank) = if self.config.with_naive {
            let naive = naive_postings(&collection, &ranks.scores);
            (
                Some(NaiveIdIndex::build(&mut pool, &naive)?),
                Some(NaiveRankIndex::build(&mut pool, &naive)?),
            )
        } else {
            (None, None)
        };

        Ok(XRankEngine::from_parts(
            self.config,
            collection,
            ranks,
            pool,
            hdil,
            rdil,
            naive_id,
            naive_rank,
            self.html_docs,
        ))
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Counting semaphore bounding concurrent evaluations
/// ([`EngineConfig::max_in_flight`]); `limit == 0` disables it entirely.
struct InFlightLimiter {
    limit: usize,
    active: Mutex<usize>,
    cv: Condvar,
}

impl InFlightLimiter {
    fn new(limit: usize) -> Self {
        InFlightLimiter { limit, active: Mutex::new(0), cv: Condvar::new() }
    }

    /// Blocks until a slot frees up (no-op when unbounded). The returned
    /// permit releases the slot on drop — including on error paths and
    /// panics, so a failed query can never leak a slot.
    fn acquire(&self) -> InFlightPermit<'_> {
        if self.limit > 0 {
            let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
            while *active >= self.limit {
                active = self.cv.wait(active).unwrap_or_else(|e| e.into_inner());
            }
            *active += 1;
        }
        InFlightPermit { limiter: self }
    }
}

struct InFlightPermit<'a> {
    limiter: &'a InFlightLimiter,
}

impl Drop for InFlightPermit<'_> {
    fn drop(&mut self) {
        if self.limiter.limit > 0 {
            let mut active = self
                .limiter
                .active
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *active = active.saturating_sub(1);
            self.limiter.cv.notify_one();
        }
    }
}

/// The built search engine (in memory by default; see
/// [`EngineBuilder::build_persistent`] / [`XRankEngine::open`] for the
/// file-backed form).
pub struct XRankEngine<S: PageStore = MemStore> {
    config: EngineConfig,
    collection: Collection,
    ranks: RankResult,
    pool: BufferPool<S>,
    hdil: HdilIndex,
    rdil: Option<RdilIndex>,
    naive_id: Option<NaiveIdIndex>,
    naive_rank: Option<NaiveRankIndex>,
    html_docs: HashSet<u32>,
    metrics: Arc<MetricsRegistry>,
    emetrics: EngineMetrics,
    slow_log: SlowQueryLog,
    limiter: InFlightLimiter,
    recorder: Arc<FlightRecorder>,
    /// Per-segment gauge series published on the last scrape, so series
    /// whose segment has since disappeared can be retired.
    segment_series: Mutex<HashSet<String>>,
}

impl<S: PageStore> XRankEngine<S> {
    /// Searches with the default (HDIL adaptive) strategy.
    pub fn search(&self, query: &str, m: usize) -> Result<SearchResults, QueryError> {
        let opts = QueryOptions { top_m: m, ..self.config.query.clone() };
        self.search_with(query, Strategy::Hdil, &opts)
    }

    /// Disjunctive search (Section 2.2's "at least one keyword"
    /// semantics): a ranked union over the direct containers of each
    /// keyword. Unknown keywords are dropped instead of emptying the
    /// result.
    pub fn search_any(&self, query: &str, m: usize) -> Result<SearchResults, QueryError> {
        let opts = QueryOptions { top_m: m, ..self.config.query.clone() };
        let terms: Vec<TermId> = xrank_graph::tokenize(query)
            .iter()
            .filter_map(|w| self.collection.vocabulary().lookup(w))
            .collect();
        self.pool.clear_cache();
        let _permit = self.limiter.acquire();
        let scope = StatsScope::begin();
        let start = std::time::Instant::now();
        let outcome =
            match xrank_query::disjunctive::evaluate(&self.pool, &self.hdil.dil, &terms, &opts) {
                Ok(o) => o,
                Err(e) => {
                    self.emetrics.record_err(&e);
                    return Err(e);
                }
            };
        let elapsed = start.elapsed();
        let io = scope.finish();
        let hits = self.present(outcome.results, opts.top_m);
        self.emetrics.record_ok(ANY_SLOT, elapsed);
        if let Some(reason) = outcome.degraded {
            self.emetrics.record_degraded(reason);
        }
        self.note_slow(query, "any", elapsed, hits.len());
        if self.recorder.is_enabled() {
            // The disjunctive path is untraced; record the op envelope so
            // it still lands on the timeline.
            let trace = xrank_obs::Trace { total: elapsed, ..Default::default() };
            let outcome_kind = if outcome.degraded.is_some() {
                OpOutcome::Degraded
            } else {
                OpOutcome::Ok
            };
            self.recorder.record(OpKind::Query, &op_label("any", query), start, outcome_kind, &trace);
        }
        Ok(SearchResults {
            hits,
            eval: outcome.stats,
            io,
            elapsed,
            trace: None,
            degraded: outcome.degraded,
        })
    }

    /// Searches with an explicit strategy and options. The buffer pool is
    /// cold-started per query, matching the paper's experimental setup.
    /// This is the single-stream benchmark entry point — the global cache
    /// clear makes it unsuitable to call concurrently; the serving path is
    /// [`XRankEngine::query`].
    pub fn search_with(
        &self,
        query: &str,
        strategy: Strategy,
        opts: &QueryOptions,
    ) -> Result<SearchResults, QueryError> {
        self.pool.clear_cache();
        self.query(query, strategy, opts)
    }

    /// Evaluates a query against the warm shared cache through `&self` —
    /// the concurrent serving entry point: any number of threads may call
    /// this on one engine simultaneously. Per-query I/O in the returned
    /// [`SearchResults::io`] is attributed via a thread-local
    /// [`StatsScope`], so it stays exact even with other queries in
    /// flight.
    /// A fault under any query — an I/O error, a checksum mismatch, a
    /// corrupt page — returns [`QueryError`] for *that query only*; the
    /// engine itself stays healthy and keeps serving.
    pub fn query(
        &self,
        query: &str,
        strategy: Strategy,
        opts: &QueryOptions,
    ) -> Result<SearchResults, QueryError> {
        self.query_inner(query, strategy, opts, QueryTrace::disabled())
    }

    /// [`XRankEngine::query`] with per-stage tracing: the returned
    /// [`SearchResults::trace`] holds the finished per-query timeline
    /// (stage timings, TA rounds, the HDIL switch decision). Tracing costs
    /// clock reads on the instrumented stages; the untraced path costs one
    /// branch per call site.
    pub fn query_traced(
        &self,
        query: &str,
        strategy: Strategy,
        opts: &QueryOptions,
    ) -> Result<SearchResults, QueryError> {
        self.query_inner(query, strategy, opts, QueryTrace::enabled())
    }

    /// Runs `query` with tracing on and renders the [`Explain`] view: the
    /// per-stage timeline plus this query's I/O delta and work counters.
    pub fn explain(
        &self,
        query: &str,
        strategy: Strategy,
        opts: &QueryOptions,
    ) -> Result<Explain, QueryError> {
        let results = self.query_traced(query, strategy, opts)?;
        Ok(Explain {
            query: query.to_string(),
            strategy: strategy_label(strategy),
            hits: results.hits.len(),
            elapsed: results.elapsed,
            eval: results.eval,
            io: results.io,
            degraded: results.degraded,
            trace: results.trace.unwrap_or_default(),
        })
    }

    fn query_inner(
        &self,
        query: &str,
        strategy: Strategy,
        opts: &QueryOptions,
        trace: QueryTrace,
    ) -> Result<SearchResults, QueryError> {
        let _permit = self.limiter.acquire();
        // The caller only gets a trace back if it asked for one, but the
        // flight recorder wants every operation traced — upgrade a
        // disabled trace while recording is on (the e8 recorder-overhead
        // gate bounds what this always-on tracing may cost).
        let explicit = trace.is_enabled();
        let record = self.recorder.is_enabled();
        let trace = if record && !explicit { QueryTrace::enabled() } else { trace };
        let fault_base = trace.is_enabled().then(|| self.pool.fault_counters());
        let scope = StatsScope::begin();
        let start = std::time::Instant::now();
        let tokenize_span = trace.span(Stage::Tokenize);
        let terms = self.resolve_terms(query);
        drop(tokenize_span);

        // Answer-node promotion (and HTML-root collapsing) can merge many
        // raw results into one presented hit; over-fetch so the final list
        // can still fill up to the requested `top_m`.
        let requested = opts.top_m;
        let opts = &QueryOptions {
            top_m: if matches!(self.config.answer_nodes, AnswerNodes::Tags(_))
                || !self.html_docs.is_empty()
            {
                requested.saturating_mul(4).saturating_add(8)
            } else {
                requested
            },
            ..opts.clone()
        };

        let evaluated = match (strategy, terms.as_deref()) {
            (_, None) => Ok(xrank_query::QueryOutcome {
                results: Vec::new(),
                stats: Default::default(),
                degraded: None,
            }),
            (Strategy::Dil, Some(t)) => {
                dil_query::evaluate_traced(&self.pool, &self.hdil.dil, t, opts, &trace)
            }
            (Strategy::Rdil, Some(t)) => self
                .rdil
                .as_ref()
                .ok_or(QueryError::Unavailable("engine built without with_rdil"))
                .and_then(|rdil| rdil_query::evaluate_traced(&self.pool, rdil, t, opts, &trace)),
            (Strategy::Hdil, Some(t)) => hdil_query::evaluate_traced(
                &self.pool,
                &self.hdil,
                t,
                opts,
                &self.config.cost_model,
                &trace,
            ),
            (Strategy::NaiveId, Some(t)) => self
                .naive_id
                .as_ref()
                .ok_or(QueryError::Unavailable("engine built without with_naive"))
                .and_then(|idx| {
                    naive_query::evaluate_id_traced(
                        &self.pool,
                        idx,
                        &self.collection,
                        t,
                        opts,
                        &trace,
                    )
                }),
            (Strategy::NaiveRank, Some(t)) => self
                .naive_rank
                .as_ref()
                .ok_or(QueryError::Unavailable("engine built without with_naive"))
                .and_then(|idx| {
                    naive_query::evaluate_rank_traced(
                        &self.pool,
                        idx,
                        &self.collection,
                        t,
                        opts,
                        &trace,
                    )
                }),
        };
        let outcome = match evaluated {
            Ok(o) => o,
            Err(e) => {
                self.emetrics.record_err(&e);
                if record {
                    let _ = scope.finish();
                    let origin = trace.origin();
                    self.recorder.record(
                        OpKind::Query,
                        &op_label(strategy_label(strategy), query),
                        origin,
                        OpOutcome::Error,
                        &trace.finish(),
                    );
                }
                return Err(e);
            }
        };

        let present_span = trace.span(Stage::Present);
        let hits = self.present(outcome.results, requested);
        drop(present_span);
        let elapsed = start.elapsed();
        let io = scope.finish();

        self.emetrics.record_ok(EngineMetrics::slot_for(strategy), elapsed);
        self.emetrics.record_eval(&outcome.stats);
        if let Some(reason) = outcome.degraded {
            self.emetrics.record_degraded(reason);
        }
        self.note_slow(query, strategy_label(strategy), elapsed, hits.len());
        if trace.is_enabled() {
            self.attach_pool_events(&trace, &io, fault_base);
        }
        let origin = trace.origin();
        let finished = trace.is_enabled().then(|| trace.finish());
        if record {
            if let Some(t) = &finished {
                let outcome_kind = if outcome.degraded.is_some() {
                    OpOutcome::Degraded
                } else {
                    OpOutcome::Ok
                };
                self.recorder.record(
                    OpKind::Query,
                    &op_label(strategy_label(strategy), query),
                    origin,
                    outcome_kind,
                    t,
                );
            }
        }
        Ok(SearchResults {
            hits,
            eval: outcome.stats,
            io,
            elapsed,
            trace: if explicit { finished } else { None },
            degraded: outcome.degraded,
        })
    }

    /// Stamps the query's I/O ledger and any circuit-breaker / retry
    /// activity observed while it ran onto the trace as `pool_io` events,
    /// so the exported timeline shows the physical cost next to the
    /// stages that incurred it.
    fn attach_pool_events(
        &self,
        trace: &QueryTrace,
        io: &xrank_storage::IoStats,
        fault_base: Option<xrank_storage::FaultCounters>,
    ) {
        for (what, n) in [
            ("seq_reads", io.seq_reads),
            ("rand_reads", io.rand_reads),
            ("cache_hits", io.cache_hits),
        ] {
            if n > 0 {
                trace.event(Stage::PoolIo, EventData::Count { what, n });
            }
        }
        if let Some(base) = fault_base {
            let now = self.pool.fault_counters();
            for (what, n) in [
                ("read_retries", now.retries.saturating_sub(base.retries)),
                ("breaker_trips", now.breaker_trips.saturating_sub(base.breaker_trips)),
                (
                    "breaker_fast_fails",
                    now.breaker_fast_fails.saturating_sub(base.breaker_fast_fails),
                ),
                (
                    "breaker_recoveries",
                    now.breaker_recoveries.saturating_sub(base.breaker_recoveries),
                ),
            ] {
                if n > 0 {
                    trace.event(Stage::PoolIo, EventData::Count { what, n });
                }
            }
        }
    }

    fn note_slow(&self, query: &str, strategy: &'static str, elapsed: std::time::Duration, hits: usize) {
        if elapsed >= self.slow_log.threshold() {
            let captured = self.slow_log.offer(SlowQueryEntry {
                query: query.to_string(),
                strategy,
                elapsed,
                hits,
            });
            if captured {
                self.emetrics.record_slow();
            }
        }
    }

    /// Lowercases, tokenizes, and resolves the query keywords. `None` if
    /// any keyword is absent from the vocabulary (conjunctive semantics —
    /// no results possible).
    fn resolve_terms(&self, query: &str) -> Option<Vec<TermId>> {
        let words = xrank_graph::tokenize(query);
        if words.is_empty() {
            return None;
        }
        words
            .iter()
            .map(|w| self.collection.vocabulary().lookup(w))
            .collect()
    }

    /// Applies answer-node promotion/HTML-root filtering and renders hits.
    fn present(
        &self,
        results: Vec<xrank_query::QueryResult>,
        m: usize,
    ) -> Vec<SearchHit> {
        let mut out: Vec<SearchHit> = Vec::new();
        let mut seen: HashSet<xrank_dewey::DeweyId> = HashSet::new();
        for r in results {
            let Some(elem) = self.collection.elem_by_dewey(&r.dewey) else { continue };
            let target = self.answer_node_for(elem);
            let dewey = self.collection.element(target).dewey.clone();
            if !seen.insert(dewey.clone()) {
                continue; // two results promoted to the same answer node
            }
            out.push(self.hit(target, dewey, r.score));
            if out.len() >= m {
                break;
            }
        }
        out
    }

    /// The closest ancestor-or-self that may be presented as a result:
    /// HTML documents return their root (Section 2.2); `AnswerNodes::Tags`
    /// promotes to the nearest listed tag.
    fn answer_node_for(&self, elem: ElemId) -> ElemId {
        let e = self.collection.element(elem);
        if self.html_docs.contains(&e.doc) {
            return self.collection.doc(e.doc).root;
        }
        match &self.config.answer_nodes {
            AnswerNodes::All => elem,
            AnswerNodes::Tags(tags) => {
                let mut cur = elem;
                loop {
                    let node = self.collection.element(cur);
                    if tags.contains(&*node.name) {
                        return cur;
                    }
                    match node.parent {
                        Some(p) => cur = p,
                        None => return self.collection.doc(node.doc).root,
                    }
                }
            }
        }
    }

    fn hit(&self, elem: ElemId, dewey: xrank_dewey::DeweyId, score: f64) -> SearchHit {
        let mut path = Vec::new();
        let mut cur = Some(elem);
        while let Some(e) = cur {
            let node = self.collection.element(e);
            path.push(node.name.to_string());
            cur = node.parent;
        }
        path.reverse();
        let words = self.collection.subtree_terms(elem);
        let mut snippet: String = words
            .iter()
            .take(16)
            .copied()
            .collect::<Vec<_>>()
            .join(" ");
        if words.len() > 16 {
            snippet.push_str(" …");
        }
        let doc_uri = self
            .collection
            .doc(self.collection.element(elem).doc)
            .uri
            .clone();
        SearchHit { dewey, elem, score, path, snippet, doc_uri }
    }

    /// The underlying collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// An element's ElemRank.
    pub fn elem_rank_of(&self, elem: ElemId) -> f64 {
        self.ranks.score(elem)
    }

    /// ElemRank convergence metadata.
    pub fn rank_result(&self) -> &RankResult {
        &self.ranks
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's shared page cache (global I/O ledger, cache control).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Storage accounting for the block-compressed DIL posting lists:
    /// `(compressed_bytes, flat_bytes, postings)` — the byte-granular
    /// on-disk footprint, the flat uncompressed baseline the same
    /// postings would take (full Dewey per entry, no delta blocks), and
    /// the posting count. Scans every list; bench/diagnostic use.
    pub fn dil_storage(&self) -> StorageResult<(u64, u64, u64)> {
        let dil = &self.hdil.dil;
        Ok((dil.used_bytes(), dil.flat_bytes(&self.pool)?, dil.total_entries()))
    }

    /// The engine's metrics registry. Shared with the
    /// [`crate::QueryExecutor`] so serving-path metrics land in one place;
    /// gate hot-path recording with
    /// [`MetricsRegistry::set_enabled`].
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Publishes pool-level gauges (hit ratio, evictions, per-segment
    /// sequential/random read split) into the registry. Called by
    /// [`XRankEngine::render_metrics`] and
    /// [`XRankEngine::metrics_snapshot`]; call directly before scraping
    /// the registry through [`XRankEngine::metrics`].
    pub fn publish_pool_metrics(&self) {
        let io = self.pool.stats();
        let ev = self.pool.eviction_counters();
        let m = &self.metrics;
        m.gauge("xrank_pool_seq_reads").set(io.seq_reads as i64);
        m.gauge("xrank_pool_rand_reads").set(io.rand_reads as i64);
        m.gauge("xrank_pool_cache_hits").set(io.cache_hits as i64);
        m.gauge("xrank_pool_writes").set(io.writes as i64);
        m.gauge("xrank_pool_evictions").set(ev.evictions as i64);
        m.gauge("xrank_pool_hand_steps").set(ev.hand_steps as i64);
        let ratio_ppm = io
            .cache_hits
            .saturating_mul(1_000_000)
            .checked_div(io.logical_reads())
            .unwrap_or(0) as i64;
        m.gauge("xrank_pool_hit_ratio_ppm").set(ratio_ppm);
        let fc = self.pool.fault_counters();
        m.gauge("xrank_pool_read_retries").set(fc.retries as i64);
        m.gauge("xrank_pool_retry_successes").set(fc.retry_successes as i64);
        m.gauge("xrank_pool_breaker_trips").set(fc.breaker_trips as i64);
        m.gauge("xrank_pool_breaker_fast_fails").set(fc.breaker_fast_fails as i64);
        m.gauge("xrank_pool_breaker_recoveries").set(fc.breaker_recoveries as i64);
        let (notable, normal) = self.recorder.depth();
        m.gauge("xrank_recorder_notable_depth").set(notable as i64);
        m.gauge("xrank_recorder_normal_depth").set(normal as i64);
        m.gauge("xrank_recorder_dropped").set(self.recorder.dropped() as i64);
        // Per-segment series carry a transient identity: publish the
        // current set, then retire series for segments that no longer
        // exist so a scrape never reports deleted segments.
        let mut fresh = HashSet::new();
        for (seg, sio) in self.pool.segment_io() {
            for (kind, reads) in [("seq", sio.seq_reads), ("rand", sio.rand_reads)] {
                let name = format!(
                    "xrank_pool_segment_reads{{segment=\"{}\",kind=\"{kind}\"}}",
                    seg.0
                );
                m.gauge(&name).set(reads as i64);
                fresh.insert(name);
            }
        }
        let mut prev = self.segment_series.lock().unwrap_or_else(|e| e.into_inner());
        for stale in prev.difference(&fresh) {
            m.retire(stale);
        }
        *prev = fresh;
    }

    /// Prometheus text exposition of every metric, with pool gauges
    /// freshly published.
    pub fn render_metrics(&self) -> String {
        self.publish_pool_metrics();
        self.metrics.render_prometheus()
    }

    /// A typed snapshot of every metric, with pool gauges freshly
    /// published.
    pub fn metrics_snapshot(&self) -> xrank_obs::MetricsSnapshot {
        self.publish_pool_metrics();
        self.metrics.snapshot()
    }

    /// The captured slow queries (queries at least
    /// [`ObsConfig::slow_query_threshold`] slow), oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.slow_log.snapshot()
    }

    /// The engine's flight recorder (see [`FlightRecorder`]): the bounded
    /// ring of recent finished operation traces.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Renders the flight recorder's retained operations as Chrome
    /// trace-event JSON, loadable in `ui.perfetto.dev`.
    pub fn dump_trace_json(&self) -> String {
        xrank_obs::render_chrome_trace(&self.recorder.records())
    }

    // --- crate-internal accessors for the persistence layer ---

    pub(crate) fn collection_ref(&self) -> &Collection {
        &self.collection
    }

    pub(crate) fn hdil_ref(&self) -> &HdilIndex {
        &self.hdil
    }

    pub(crate) fn rdil_ref(&self) -> Option<&RdilIndex> {
        self.rdil.as_ref()
    }

    pub(crate) fn naive_id_ref(&self) -> Option<&NaiveIdIndex> {
        self.naive_id.as_ref()
    }

    pub(crate) fn naive_rank_ref(&self) -> Option<&NaiveRankIndex> {
        self.naive_rank.as_ref()
    }

    pub(crate) fn html_docs_ref(&self) -> &HashSet<u32> {
        &self.html_docs
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        config: EngineConfig,
        collection: Collection,
        ranks: RankResult,
        pool: BufferPool<S>,
        hdil: HdilIndex,
        rdil: Option<RdilIndex>,
        naive_id: Option<NaiveIdIndex>,
        naive_rank: Option<NaiveRankIndex>,
        html_docs: HashSet<u32>,
    ) -> Self {
        let metrics = Arc::new(if config.obs.metrics_enabled {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        let emetrics = EngineMetrics::new(&metrics);
        let slow_log = SlowQueryLog::new(&config.obs);
        let limiter = InFlightLimiter::new(config.max_in_flight);
        let recorder = Arc::new(FlightRecorder::new(config.obs.recorder.clone()));
        XRankEngine {
            config,
            collection,
            ranks,
            pool,
            hdil,
            rdil,
            naive_id,
            naive_rank,
            html_docs,
            metrics,
            emetrics,
            slow_log,
            limiter,
            recorder,
            segment_series: Mutex::new(HashSet::new()),
        }
    }

    /// Replaces this engine's flight recorder — used by the update
    /// pipeline so every per-segment engine records into the pipeline's
    /// shared ring (queries and background work on one timeline).
    pub(crate) fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The thread knob reaches the rank kernel and does not perturb the
    /// computed ElemRanks (within the cross-thread-count tolerance).
    #[test]
    fn rank_threads_plumbs_through_without_changing_scores() {
        let xml = r#"<r><a id="1"><b>alpha beta</b><c>gamma</c></a><d ref="1">cite</d></r>"#;
        let build = |threads: usize| {
            let mut b = EngineBuilder::new().rank_threads(threads);
            b.add_xml("doc", xml).unwrap();
            b.build()
        };
        let single = build(1);
        assert_eq!(single.config().rank_params.threads, 1);
        let dual = build(2);
        assert_eq!(dual.config().rank_params.threads, 2);
        let (a, b) = (&single.rank_result().scores, &dual.rank_result().scores);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-12));
    }
}
