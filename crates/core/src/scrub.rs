//! Online integrity scrub for the update pipeline.
//!
//! A [`Scrubber`] owns one worker thread that continuously walks the
//! pipeline's sealed segments at a throttled page rate, re-reading every
//! physical page off the medium and verifying its CRC32 trailer — the
//! open-time full-checksum scan, running *while serving*. A failed page
//! quarantines its segment ([`crate::UpdatableXRank::quarantine`]): reads
//! against it fail fast with a typed
//! [`xrank_storage::StorageError::Quarantined`] (or degrade under
//! `allow_partial`) while every other segment keeps serving. With
//! [`ScrubPolicy::auto_repair`] the worker then triggers self-repair
//! ([`crate::UpdatableXRank::repair_segment`]): the segment is rebuilt
//! from its CRC-checked docs sidecar into a fresh segment id, published
//! with one atomic manifest swap, and the quarantine released.
//!
//! The plumbing is the [`crate::Compactor`]'s: shutdown cancels a shared
//! [`CancelToken`], wakes the worker, and joins it; the worker holds only
//! a `Weak` reference to the pipeline, so dropping the last user `Arc`
//! also ends the thread at its next wake-up. The worker thread is named
//! `xrank-scrubber`, so its scrub and repair ops land on their own track
//! in flight-recorder trace dumps.

use crate::update::{ScrubCursor, UpdatableXRank};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;
use xrank_query::CancelToken;

/// How fast (and how autonomously) the background scrubber works.
#[derive(Debug, Clone)]
pub struct ScrubPolicy {
    /// Pause between verification chunks — the throttle that keeps the
    /// scrub's read traffic from competing with queries.
    pub interval: Duration,
    /// Physical pages verified per chunk.
    pub pages_per_chunk: u64,
    /// Whether a quarantined segment is repaired immediately by the
    /// worker itself. Off, the quarantine stands until an operator (or
    /// test) calls [`UpdatableXRank::repair_segment`].
    pub auto_repair: bool,
}

impl Default for ScrubPolicy {
    fn default() -> Self {
        ScrubPolicy {
            interval: Duration::from_millis(250),
            pages_per_chunk: 256,
            auto_repair: true,
        }
    }
}

struct Shared {
    cancel: CancelToken,
    nudged: Mutex<bool>,
    cv: Condvar,
}

/// Handle to the background scrub worker. Dropping it (or calling
/// [`Scrubber::shutdown`]) wakes and joins the thread.
pub struct Scrubber {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Scrubber {
    /// Spawns the worker against `index` under `policy`.
    pub fn spawn(index: &Arc<UpdatableXRank>, policy: ScrubPolicy) -> Scrubber {
        let shared = Arc::new(Shared {
            cancel: CancelToken::new(),
            nudged: Mutex::new(false),
            cv: Condvar::new(),
        });
        let weak: Weak<UpdatableXRank> = Arc::downgrade(index);
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("xrank-scrubber".into())
            .spawn(move || Self::worker_loop(weak, policy, worker_shared))
            .expect("spawn scrubber worker");
        Scrubber { shared, handle: Some(handle) }
    }

    fn worker_loop(weak: Weak<UpdatableXRank>, policy: ScrubPolicy, shared: Arc<Shared>) {
        let mut cursor = ScrubCursor::default();
        loop {
            {
                let guard = shared.nudged.lock().unwrap_or_else(|e| e.into_inner());
                let (mut guard, _) = shared
                    .cv
                    .wait_timeout_while(guard, policy.interval, |nudged| {
                        !*nudged && !shared.cancel.is_cancelled()
                    })
                    .unwrap_or_else(|e| e.into_inner());
                *guard = false;
            }
            if shared.cancel.is_cancelled() {
                return;
            }
            let Some(index) = weak.upgrade() else { return };
            let report = index.scrub_chunk(policy.pages_per_chunk, &mut cursor);
            if policy.auto_repair {
                for seg_id in report.corrupt_segments {
                    // A failed repair leaves the quarantine standing —
                    // the segment keeps failing fast, the worker keeps
                    // scrubbing everything else, and the next corruption
                    // report (or an operator) can retry.
                    let _ = index.repair_segment(seg_id);
                }
            }
        }
    }

    /// Wakes the worker now instead of waiting out the throttle interval.
    pub fn nudge(&self) {
        let mut nudged = self.shared.nudged.lock().unwrap_or_else(|e| e.into_inner());
        *nudged = true;
        self.shared.cv.notify_all();
    }

    /// Stops and joins the worker. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.cancel.cancel();
        self.nudge();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.shutdown();
    }
}
