//! The durable layout of the segmented update pipeline: versioned,
//! CRC-checked manifests, the `CURRENT` pointer, and per-segment document
//! sidecars.
//!
//! A durable pipeline directory looks like:
//!
//! ```text
//! dir/
//!   CURRENT               → "MANIFEST-<seq>\n" (the atomic publish point)
//!   MANIFEST-<seq>        segment ids + per-segment tombstones, CRC32
//!   seg-<id>/             one sealed segment
//!     store/…             the engine (PR 3 crash-safe layout)
//!     docs.bin            document sources (compaction rebuilds), CRC32
//! ```
//!
//! Every mutation follows the same discipline: build everything off to
//! the side (a new `seg-<id>/` through the staged-write + fsync + rename
//! machinery, a new `MANIFEST-<seq>` through write-tmp + fsync + rename),
//! then publish with a single atomic rename of `CURRENT`. A crash before
//! the `CURRENT` swap strands unreferenced files that the next open
//! garbage-collects; it can never strand a half-published state, because
//! recovery treats a valid `CURRENT` as authoritative — deliberately *not*
//! "highest manifest wins": a manifest whose `CURRENT` swap never landed
//! was never published, and reopening must surface the last state a
//! reader could have observed.

use crate::snapshot::DocSource;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use xrank_storage::crc32;
use xrank_storage::wire::{get_str, get_u32, get_u64, put_str, put_u32, put_u64};

const MANIFEST_MAGIC: &[u8; 4] = b"XRKM";
const MANIFEST_VERSION: u32 = 1;
const DOCS_MAGIC: &[u8; 4] = b"XRKD";
const DOCS_VERSION: u32 = 1;

/// The `CURRENT` pointer file.
pub(crate) const CURRENT_FILE: &str = "CURRENT";
/// Per-segment document-source sidecar inside `seg-<id>/`.
pub(crate) const DOCS_FILE: &str = "docs.bin";

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("update manifest: {msg}"))
}

/// `MANIFEST-<seq>` (fixed-width so lexicographic order is seq order).
pub(crate) fn manifest_name(seq: u64) -> String {
    format!("MANIFEST-{seq:016}")
}

/// `seg-<id>` directory name.
pub(crate) fn segment_dir_name(id: u64) -> String {
    format!("seg-{id:08}")
}

/// One segment as the manifest records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ManifestSegment {
    /// Segment id (names `seg-<id>/`).
    pub id: u64,
    /// URIs deleted from this segment since it sealed (sorted).
    pub tombstones: Vec<String>,
}

/// A parsed manifest: the full published state at one sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ManifestData {
    pub seq: u64,
    /// Oldest segment first.
    pub segments: Vec<ManifestSegment>,
}

/// Serializes and durably writes `MANIFEST-<seq>` (tmp + fsync + rename +
/// dir fsync). Does NOT publish it — that is [`publish_current`]'s single
/// atomic step.
pub(crate) fn write_manifest(dir: &Path, data: &ManifestData) -> io::Result<PathBuf> {
    let mut body = Vec::new();
    body.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut body, MANIFEST_VERSION)?;
    put_u64(&mut body, data.seq)?;
    put_u32(&mut body, data.segments.len() as u32)?;
    for seg in &data.segments {
        put_u64(&mut body, seg.id)?;
        put_u32(&mut body, seg.tombstones.len() as u32)?;
        for t in &seg.tombstones {
            put_str(&mut body, t)?;
        }
    }
    let crc = crc32(&body);
    put_u32(&mut body, crc)?;

    let path = dir.join(manifest_name(data.seq));
    let tmp = dir.join(format!("{}.tmp", manifest_name(data.seq)));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    crate::persist::fsync_dir(dir)?;
    Ok(path)
}

/// Reads and CRC-verifies a manifest file.
pub(crate) fn read_manifest(path: &Path) -> io::Result<ManifestData> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 4 {
        return Err(bad("truncated"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    if crc32(body) != stored {
        return Err(bad("checksum mismatch"));
    }
    let mut r = body;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MANIFEST_MAGIC {
        return Err(bad("bad magic"));
    }
    let version = get_u32(&mut r)?;
    if version != MANIFEST_VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }
    let seq = get_u64(&mut r)?;
    let n = get_u32(&mut r)?;
    let mut segments = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let id = get_u64(&mut r)?;
        let nt = get_u32(&mut r)?;
        let mut tombstones = Vec::with_capacity(nt as usize);
        for _ in 0..nt {
            tombstones.push(get_str(&mut r)?);
        }
        segments.push(ManifestSegment { id, tombstones });
    }
    if !r.is_empty() {
        return Err(bad("trailing bytes"));
    }
    Ok(ManifestData { seq, segments })
}

/// Atomically repoints `CURRENT` at `MANIFEST-<seq>`: write `CURRENT.tmp`,
/// fsync, rename over `CURRENT`, fsync the directory. The rename is the
/// pipeline's commit point — before it readers (and recovery) see the
/// previous state, after it the new one, never a mix.
pub(crate) fn publish_current(dir: &Path, seq: u64) -> io::Result<()> {
    let tmp = dir.join("CURRENT.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(manifest_name(seq).as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(CURRENT_FILE))?;
    crate::persist::fsync_dir(dir)
}

/// The sequence number `CURRENT` points at, if `CURRENT` exists, parses,
/// and names a readable manifest file.
fn current_seq(dir: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(dir.join(CURRENT_FILE)).ok()?;
    let name = text.trim();
    let seq: u64 = name.strip_prefix("MANIFEST-")?.parse().ok()?;
    (manifest_name(seq) == name).then_some(seq)
}

/// Every `MANIFEST-<seq>` present in `dir`, ascending.
fn manifest_seqs(dir: &Path) -> Vec<u64> {
    let mut seqs: Vec<u64> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let seq: u64 = name.strip_prefix("MANIFEST-")?.parse().ok()?;
            (manifest_name(seq) == name).then_some(seq)
        })
        .collect();
    seqs.sort_unstable();
    seqs
}

/// Every `seg-<id>/` directory present in `dir`, ascending.
pub(crate) fn segment_ids(dir: &Path) -> Vec<u64> {
    let mut ids: Vec<u64> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let id: u64 = name.strip_prefix("seg-")?.parse().ok()?;
            (segment_dir_name(id) == name && e.path().is_dir()).then_some(id)
        })
        .collect();
    ids.sort_unstable();
    ids
}

/// Recovery: the last *published* manifest. A valid `CURRENT` is
/// authoritative; only when it is missing or its manifest is unreadable
/// does the scan fall back to the newest readable manifest (and then
/// keeps walking backwards past corrupt ones). `Ok(None)` means a fresh
/// directory.
pub(crate) fn load_published(dir: &Path) -> io::Result<Option<ManifestData>> {
    if let Some(seq) = current_seq(dir) {
        match read_manifest(&dir.join(manifest_name(seq))) {
            Ok(m) if m.seq == seq => return Ok(Some(m)),
            Ok(_) => return Err(bad("CURRENT names a manifest with a different seq")),
            Err(_) => {} // fall through to the scan
        }
    }
    for seq in manifest_seqs(dir).into_iter().rev() {
        if let Ok(m) = read_manifest(&dir.join(manifest_name(seq))) {
            if m.seq == seq {
                return Ok(Some(m));
            }
        }
    }
    Ok(None)
}

/// The next safe (seq, segment-id) counters after recovery: strictly
/// above every file on disk, published or stranded, so an orphaned
/// `MANIFEST-7` from a pre-crash attempt is never silently shadowed by a
/// new, different manifest of the same name.
pub(crate) fn next_counters(dir: &Path, published: &Option<ManifestData>) -> (u64, u64) {
    let max_seq = manifest_seqs(dir)
        .last()
        .copied()
        .max(published.as_ref().map(|m| m.seq))
        .unwrap_or(0);
    let max_seg = segment_ids(dir)
        .last()
        .copied()
        .max(published.as_ref().and_then(|m| m.segments.iter().map(|s| s.id).max()))
        .unwrap_or(0);
    (max_seq + 1, max_seg + 1)
}

/// Best-effort garbage collection. Keeps the published manifest
/// (`keep_seq`) plus the newest one below it — so if the published
/// manifest is later found corrupt, recovery has a valid fallback — and
/// the segment directories either of them references. Everything else
/// goes: older manifests, manifests *above* `keep_seq` (sealed but never
/// published — a stranded pre-crash write that must not resurface), and
/// unreferenced segment directories. Failures are ignored — GC re-runs at
/// every publish and open, and an un-collected file is only wasted space,
/// never a correctness hazard.
pub(crate) fn gc(dir: &Path, keep_seq: u64, live_segs: &[u64]) {
    let seqs = manifest_seqs(dir);
    let prev_seq = seqs.iter().rev().find(|&&s| s < keep_seq).copied();
    let mut keep_segs: Vec<u64> = live_segs.to_vec();
    if let Some(ps) = prev_seq {
        if let Ok(m) = read_manifest(&dir.join(manifest_name(ps))) {
            keep_segs.extend(m.segments.iter().map(|s| s.id));
        }
    }
    for seq in seqs {
        if seq != keep_seq && Some(seq) != prev_seq {
            let _ = std::fs::remove_file(dir.join(manifest_name(seq)));
        }
    }
    for id in segment_ids(dir) {
        if !keep_segs.contains(&id) {
            let _ = std::fs::remove_dir_all(dir.join(segment_dir_name(id)));
        }
    }
    // Stranded tmp files from interrupted writes.
    for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
        if let Ok(name) = entry.file_name().into_string() {
            if name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// Durably writes a segment's document-source sidecar (`docs.bin`).
/// Written *before* the segment seals, so a sealed segment always carries
/// its sources; CRC-checked on read like everything else in the layout.
pub(crate) fn write_docs_sidecar(
    seg_dir: &Path,
    docs: &BTreeMap<String, DocSource>,
) -> io::Result<()> {
    let mut body = Vec::new();
    body.extend_from_slice(DOCS_MAGIC);
    put_u32(&mut body, DOCS_VERSION)?;
    put_u32(&mut body, docs.len() as u32)?;
    for (uri, src) in docs {
        let (kind, text) = match src {
            DocSource::Xml(s) => (0u8, s),
            DocSource::Html(s) => (1u8, s),
        };
        body.push(kind);
        put_str(&mut body, uri)?;
        put_str(&mut body, text)?;
    }
    let crc = crc32(&body);
    put_u32(&mut body, crc)?;
    let path = seg_dir.join(DOCS_FILE);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(&body)?;
    f.sync_all()?;
    crate::persist::fsync_dir(seg_dir)
}

/// Reads and CRC-verifies a segment's `docs.bin`.
pub(crate) fn read_docs_sidecar(seg_dir: &Path) -> io::Result<BTreeMap<String, DocSource>> {
    let bytes = std::fs::read(seg_dir.join(DOCS_FILE))?;
    if bytes.len() < 4 {
        return Err(bad("docs sidecar truncated"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    if crc32(body) != stored {
        return Err(bad("docs sidecar checksum mismatch"));
    }
    let mut r = body;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != DOCS_MAGIC {
        return Err(bad("docs sidecar bad magic"));
    }
    let version = get_u32(&mut r)?;
    if version != DOCS_VERSION {
        return Err(bad(&format!("docs sidecar unsupported version {version}")));
    }
    let n = get_u32(&mut r)?;
    let mut docs = BTreeMap::new();
    for _ in 0..n {
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        let uri = get_str(&mut r)?;
        let text = get_str(&mut r)?;
        let src = match kind[0] {
            0 => DocSource::Xml(text),
            1 => DocSource::Html(text),
            k => return Err(bad(&format!("docs sidecar bad kind {k}"))),
        };
        docs.insert(uri, src);
    }
    if !r.is_empty() {
        return Err(bad("docs sidecar trailing bytes"));
    }
    Ok(docs)
}
