//! Write-ahead log for sub-commit durability of the update pipeline.
//!
//! The segmented pipeline of DESIGN §4.13 acknowledges an `add` the
//! moment it is staged — but staged documents lived only in memory until
//! the next `commit` sealed them into a segment. This module closes that
//! window: every accepted mutation is framed into an append-only log
//! (`dir/wal.log`) *before* it is applied, and [`UpdatableXRank::open`]
//! replays the log after loading the published manifest, so a process
//! kill at any point between accept and publish recovers every
//! acknowledged mutation (under [`SyncPolicy::Always`]; the other
//! policies trade a bounded loss window for fewer fsyncs).
//!
//! On-disk format — a fixed header followed by CRC32-framed records:
//!
//! ```text
//! "XRKW" <version:u32 LE>                          header (8 bytes)
//! <len:u32 LE> <crc:u32 LE> <kind:u8> <payload…>   one frame per record
//! ```
//!
//! `len` covers `kind + payload`; `crc` is the CRC32 of those same bytes.
//! Replay walks frames until the first incomplete or damaged one — a torn
//! tail (crash mid-append) or a flipped bit silently ends the log there,
//! losing at most the records at and past the damage, never panicking and
//! never resurrecting garbage.
//!
//! The log is *truncated by checkpoint*, not by ftruncate games: once a
//! publish has made the log's effects durable in the manifest layout, the
//! pipeline rewrites the log to hold exactly the still-staged documents
//! (write `wal.log.tmp`, fsync, rename, fsync dir). A crash mid-rewrite
//! leaves the old log, and replay is idempotent, so the worst case is
//! replaying work that was already published.
//!
//! [`UpdatableXRank::open`]: crate::UpdatableXRank::open

use crate::snapshot::DocSource;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use xrank_storage::crc32;
use xrank_storage::wire::{get_str, put_str};

/// The log file inside a durable pipeline directory.
pub(crate) const WAL_FILE: &str = "wal.log";
/// Checkpoint staging name. Ends in `.tmp` on purpose: a rewrite stranded
/// by a crash is garbage-collected with every other tmp file at the next
/// open.
const WAL_TMP: &str = "wal.log.tmp";

const WAL_MAGIC: &[u8; 4] = b"XRKW";
const WAL_VERSION: u32 = 1;
/// Magic + version.
const HEADER_LEN: usize = 8;
/// Per-frame len + crc prefix.
const FRAME_PREFIX: usize = 8;

/// When write-ahead-log appends reach the device
/// ([`crate::WalConfig::sync`]).
///
/// The policy bounds what a process kill (not a clean error return) can
/// lose: with `Always` nothing acknowledged is ever lost; with
/// `GroupCommit` at most the appends of the last interval; with `Never`
/// everything since the last checkpoint or OS writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append: an acknowledged mutation is durable
    /// before the call returns. The default.
    Always,
    /// Batch fsyncs: an append fsyncs only when this much time has passed
    /// since the last sync — one device flush covers the whole group of
    /// appends since, amortizing the cost under write bursts.
    GroupCommit(Duration),
    /// Never fsync from the append path (the OS flushes on its own
    /// schedule; checkpoints still fsync their rewrite).
    Never,
}

/// Write-ahead-log configuration ([`crate::EngineConfig::wal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Master switch. Disabled, the pipeline behaves exactly as before
    /// the log existed: staged documents die with the process.
    pub enabled: bool,
    /// When appends reach the device.
    pub sync: SyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { enabled: true, sync: SyncPolicy::Always }
    }
}

/// One logged mutation, in acceptance order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// An accepted `add_xml` (a replace is the same record: replay
    /// re-derives the tombstone against the published snapshot).
    AddXml {
        /// Document URI.
        uri: String,
        /// Raw source (validated before the record was accepted).
        text: String,
    },
    /// An accepted `add_html`.
    AddHtml {
        /// Document URI.
        uri: String,
        /// Raw source.
        text: String,
    },
    /// An accepted `delete`.
    Delete {
        /// Document URI.
        uri: String,
    },
}

const KIND_ADD_XML: u8 = 1;
const KIND_ADD_HTML: u8 = 2;
const KIND_DELETE: u8 = 3;

impl WalRecord {
    /// Serializes `kind + payload` (the CRC-covered frame body).
    fn encode_body(&self) -> io::Result<Vec<u8>> {
        let mut body = Vec::new();
        match self {
            WalRecord::AddXml { uri, text } => {
                body.push(KIND_ADD_XML);
                put_str(&mut body, uri)?;
                put_str(&mut body, text)?;
            }
            WalRecord::AddHtml { uri, text } => {
                body.push(KIND_ADD_HTML);
                put_str(&mut body, uri)?;
                put_str(&mut body, text)?;
            }
            WalRecord::Delete { uri } => {
                body.push(KIND_DELETE);
                put_str(&mut body, uri)?;
            }
        }
        Ok(body)
    }

    /// Parses a frame body. `None` on any structural damage.
    fn decode_body(body: &[u8]) -> Option<WalRecord> {
        let (&kind, mut rest) = body.split_first()?;
        let rec = match kind {
            KIND_ADD_XML => WalRecord::AddXml {
                uri: get_str(&mut rest).ok()?,
                text: get_str(&mut rest).ok()?,
            },
            KIND_ADD_HTML => WalRecord::AddHtml {
                uri: get_str(&mut rest).ok()?,
                text: get_str(&mut rest).ok()?,
            },
            KIND_DELETE => WalRecord::Delete { uri: get_str(&mut rest).ok()? },
            _ => return None,
        };
        rest.is_empty().then_some(rec)
    }
}

/// Deterministic append-fault injection (the WAL analogue of the storage
/// crate's `FaultStore` rules): after `after` more successful appends,
/// the next `times` appends fail with ENOSPC or EIO before touching the
/// file. Test hook; armed through
/// [`crate::UpdatableXRank::wal_inject_fault`].
#[derive(Debug, Clone, Copy)]
pub struct WalFault {
    /// Successful appends remaining before the fault fires.
    pub after: u64,
    /// How many consecutive appends fail once it fires.
    pub times: u64,
    /// Report ENOSPC (raw os error 28) instead of a generic EIO.
    pub no_space: bool,
}

/// The open write-ahead log of one durable pipeline. All methods are
/// called under the pipeline's writer lock — the log needs no locking of
/// its own, and its order matches staged-state mutation order by
/// construction.
pub(crate) struct Wal {
    dir: PathBuf,
    path: PathBuf,
    file: File,
    policy: SyncPolicy,
    last_sync: Instant,
    /// Unsynced appended bytes exist.
    dirty: bool,
    fault: Option<WalFault>,
}

impl Wal {
    /// Opens (creating if absent) `dir/wal.log`, replays every intact
    /// frame, and truncates any torn tail so new appends extend a clean
    /// log. Returns the log handle and the replayed records in order.
    pub(crate) fn open(dir: &Path, policy: SyncPolicy) -> io::Result<(Wal, Vec<WalRecord>)> {
        let path = dir.join(WAL_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, good_len) = parse_log(&bytes);

        // truncate(false): the log must survive the open; torn tails are
        // cut explicitly via set_len below.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        if bytes.is_empty() || good_len < HEADER_LEN as u64 {
            // Fresh file, or a header too damaged to extend: start over.
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&WAL_VERSION.to_le_bytes())?;
        } else if good_len < bytes.len() as u64 {
            // Torn or corrupt tail: everything past the last intact frame
            // was never acknowledged as durable — drop it so the next
            // append does not graft onto garbage.
            file.set_len(good_len)?;
        }
        file.sync_all()?;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                path,
                file,
                policy,
                last_sync: Instant::now(),
                dirty: false,
                fault: None,
            },
            records,
        ))
    }

    /// Appends one record, fsyncing per the sync policy. Returns whether
    /// this append flushed the device. On error nothing is acknowledged:
    /// the caller must reject the mutation without applying it (a partial
    /// frame possibly left behind is exactly a torn tail — replay drops
    /// it).
    pub(crate) fn append(&mut self, rec: &WalRecord) -> io::Result<bool> {
        if let Some(mut fault) = self.fault {
            if fault.after > 0 {
                fault.after -= 1;
                self.fault = Some(fault);
            } else {
                fault.times = fault.times.saturating_sub(1);
                self.fault = (fault.times > 0).then_some(fault);
                let raw = if fault.no_space { 28 } else { 5 };
                return Err(io::Error::from_raw_os_error(raw));
            }
        }
        let body = rec.encode_body()?;
        let mut frame = Vec::with_capacity(FRAME_PREFIX + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.dirty = true;
        let sync_now = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::GroupCommit(interval) => self.last_sync.elapsed() >= interval,
            SyncPolicy::Never => false,
        };
        if sync_now {
            self.sync()?;
        }
        Ok(sync_now)
    }

    /// Flushes appended records to the device (group-commit batching ends
    /// here).
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Rewrites the log to hold exactly `staged` (one add record per
    /// still-staged document) via write-tmp + fsync + rename + dir fsync.
    /// Called only after the state the old log protected is durable in
    /// the manifest layout; a crash mid-rewrite leaves the old (larger
    /// but still correct) log in place.
    pub(crate) fn checkpoint(
        &mut self,
        staged: &BTreeMap<String, DocSource>,
    ) -> io::Result<()> {
        let tmp = self.dir.join(WAL_TMP);
        let mut body = Vec::new();
        body.extend_from_slice(WAL_MAGIC);
        body.extend_from_slice(&WAL_VERSION.to_le_bytes());
        for (uri, src) in staged {
            let rec = match src {
                DocSource::Xml(text) => {
                    WalRecord::AddXml { uri: uri.clone(), text: text.clone() }
                }
                DocSource::Html(text) => {
                    WalRecord::AddHtml { uri: uri.clone(), text: text.clone() }
                }
            };
            let rb = rec.encode_body()?;
            body.extend_from_slice(&(rb.len() as u32).to_le_bytes());
            body.extend_from_slice(&crc32(&rb).to_le_bytes());
            body.extend_from_slice(&rb);
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        crate::persist::fsync_dir(&self.dir)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        self.file = file;
        self.dirty = false;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Arms (or disarms with `None`) the deterministic append fault.
    pub(crate) fn set_fault(&mut self, fault: Option<WalFault>) {
        self.fault = fault;
    }

    /// Current log size in bytes (tests and gauges).
    pub(crate) fn len(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }
}

/// Walks `bytes` as a WAL, returning every intact record plus the byte
/// length of the clean prefix (header + intact frames). Stops — without
/// panicking — at a short header, a truncated frame, a CRC mismatch, or
/// an undecodable body: everything from the first damage on is a torn
/// tail and is dropped.
pub(crate) fn parse_log(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    if bytes.len() < HEADER_LEN
        || &bytes[..4] != WAL_MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) != WAL_VERSION
    {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut at = HEADER_LEN;
    while bytes.len() - at >= FRAME_PREFIX {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let body_at = at + FRAME_PREFIX;
        if len == 0 || bytes.len() - body_at < len {
            break; // truncated frame (torn tail)
        }
        let body = &bytes[body_at..body_at + len];
        if crc32(body) != crc {
            break; // damaged frame: the log ends here
        }
        let Some(rec) = WalRecord::decode_body(body) else {
            break;
        };
        records.push(rec);
        at = body_at + len;
    }
    (records, at as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xrank-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn add(uri: &str, text: &str) -> WalRecord {
        WalRecord::AddXml { uri: uri.into(), text: text.into() }
    }

    #[test]
    fn round_trips_records_in_order() {
        let dir = tmp_dir("roundtrip");
        let recs = vec![
            add("a", "<d>one</d>"),
            WalRecord::AddHtml { uri: "p".into(), text: "<html>x</html>".into() },
            WalRecord::Delete { uri: "a".into() },
        ];
        {
            let (mut wal, replayed) = Wal::open(&dir, SyncPolicy::Always).unwrap();
            assert!(replayed.is_empty());
            for r in &recs {
                wal.append(r).unwrap();
            }
        }
        let (_, replayed) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(replayed, recs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_log_stays_appendable() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, SyncPolicy::Always).unwrap();
            wal.append(&add("a", "<d>a</d>")).unwrap();
            wal.append(&add("b", "<d>b</d>")).unwrap();
        }
        // Tear the last frame mid-byte.
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut wal, replayed) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(replayed, vec![add("a", "<d>a</d>")], "only the intact prefix survives");
        wal.append(&add("c", "<d>c</d>")).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(replayed, vec![add("a", "<d>a</d>"), add("c", "<d>c</d>")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_bit_ends_replay_at_the_damage() {
        let dir = tmp_dir("bitflip");
        {
            let (mut wal, _) = Wal::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..4 {
                wal.append(&add(&format!("d{i}"), "<d>text</d>")).unwrap();
            }
        }
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the second frame's body.
        let mut at = HEADER_LEN;
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += FRAME_PREFIX + len; // start of frame 2
        bytes[at + FRAME_PREFIX + 1] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replayed) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(replayed.len(), 1, "replay stops at the damaged frame");
        assert_eq!(replayed[0], add("d0", "<d>text</d>"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rewrites_to_staged_set_only() {
        let dir = tmp_dir("checkpoint");
        let (mut wal, _) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        for i in 0..8 {
            wal.append(&add(&format!("d{i}"), "<d>text</d>")).unwrap();
        }
        let before = wal.len();
        let mut staged = BTreeMap::new();
        staged.insert("keep".to_string(), DocSource::Xml("<d>kept</d>".into()));
        wal.checkpoint(&staged).unwrap();
        assert!(wal.len() < before, "checkpoint shrank the log");
        // And the new log extends cleanly.
        wal.append(&WalRecord::Delete { uri: "keep".into() }).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(
            replayed,
            vec![add("keep", "<d>kept</d>"), WalRecord::Delete { uri: "keep".into() }]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_fault_fails_append_then_clears() {
        let dir = tmp_dir("fault");
        let (mut wal, _) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        wal.set_fault(Some(WalFault { after: 1, times: 2, no_space: true }));
        wal.append(&add("ok", "<d>x</d>")).unwrap();
        for _ in 0..2 {
            let err = wal.append(&add("no", "<d>x</d>")).unwrap_err();
            assert_eq!(err.raw_os_error(), Some(28), "ENOSPC");
        }
        wal.append(&add("again", "<d>x</d>")).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(replayed, vec![add("ok", "<d>x</d>"), add("again", "<d>x</d>")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_or_empty_file_is_reinitialized_not_trusted() {
        let dir = tmp_dir("foreign");
        std::fs::write(dir.join(WAL_FILE), b"not a wal at all").unwrap();
        let (mut wal, replayed) = Wal::open(&dir, SyncPolicy::Never).unwrap();
        assert!(replayed.is_empty());
        wal.append(&add("a", "<d>a</d>")).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir, SyncPolicy::Never).unwrap();
        assert_eq!(replayed, vec![add("a", "<d>a</d>")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
