//! Search result presentation types.

use xrank_dewey::DeweyId;
use xrank_graph::ElemId;
use xrank_obs::{DegradeReason, Trace};
use xrank_query::EvalStats;
use xrank_storage::IoStats;

/// One ranked hit, enriched with presentation context ("allow the user to
/// navigate up to the ancestors of the query result to get more context
/// information", Section 2.2).
#[derive(Debug, Clone)]
pub struct SearchHit {
    /// The result element's Dewey ID.
    pub dewey: DeweyId,
    /// The result element.
    pub elem: ElemId,
    /// Overall rank `R(v₁, Q)`.
    pub score: f64,
    /// Element tag names from the document root down to the result.
    pub path: Vec<String>,
    /// Leading words of the element's content.
    pub snippet: String,
    /// The document URI.
    pub doc_uri: String,
}

/// A ranked result list plus evaluation metrics.
#[derive(Debug, Clone)]
pub struct SearchResults {
    /// Hits in descending score order.
    pub hits: Vec<SearchHit>,
    /// Algorithmic work counters.
    pub eval: EvalStats,
    /// Physical I/O performed by this query (cold-start, per query).
    pub io: IoStats,
    /// Wall-clock time of the evaluation.
    pub elapsed: std::time::Duration,
    /// Per-stage timings and events, populated by
    /// [`crate::XRankEngine::query_traced`] /
    /// [`crate::XRankEngine::explain`]; `None` on the untraced path.
    pub trace: Option<Trace>,
    /// `Some(reason)` when the evaluation stopped early (deadline or I/O
    /// budget, with `allow_partial` set) and `hits` is the best-so-far
    /// top-k rather than the full answer. Degraded hits carry exact
    /// scores and are order-consistent with the unbudgeted ranking; the
    /// set may simply be missing results the cut-off evaluation never
    /// reached. `None` means the answer is complete.
    pub degraded: Option<DegradeReason>,
}

impl SearchResults {
    /// Whether this is a partial (degraded) answer.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

impl SearchResults {
    /// Renders the hits as a compact human-readable listing (used by the
    /// examples).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, h) in self.hits.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:2}. [{:.3e}] <{}>  {}  — {}",
                i + 1,
                h.score,
                h.path.join("/"),
                h.dewey,
                h.snippet
            );
        }
        out
    }
}
