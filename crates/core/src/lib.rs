//! The XRANK engine facade: the end-to-end system of Figure 2.
//!
//! Ties the substrates together into the pipeline the paper's architecture
//! diagram shows: documents → XML graph (`xrank-graph`) → *ElemRank
//! Computation* (`xrank-rank`) → *HDIL generation* (`xrank-index`) →
//! *Query Evaluator* (`xrank-query`) → ranked results.
//!
//! ```
//! use xrank_core::{EngineBuilder, Strategy};
//!
//! let mut builder = EngineBuilder::new();
//! builder
//!     .add_xml(
//!         "workshop",
//!         "<workshop><paper><title>XQL and Proximal Nodes</title>\
//!          <body>the XQL query language</body></paper></workshop>",
//!     )
//!     .unwrap();
//! let engine = builder.build();
//! let hits = engine.search("xql language", 10).unwrap();
//! assert!(!hits.hits.is_empty());
//! assert_eq!(hits.hits[0].path.last().map(String::as_str), Some("body"));
//! ```
//!
//! The engine also implements the paper's two result-presentation aids
//! (Section 2.2): *answer nodes* (restrict results to a set of element
//! tags, promoting deeper matches to their closest answer-node ancestor)
//! and HTML mode (each HTML page is one element, so only whole pages are
//! returned — the Google-generalization behaviour).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compactor;
mod engine;
mod executor;
mod manifest;
mod persist;
mod results;
mod scrub;
mod snapshot;
mod telemetry;
mod update;
mod wal;

pub use compactor::{CompactionPolicy, Compactor};
pub use engine::{AnswerNodes, EngineBuilder, EngineConfig, Strategy, XRankEngine};
pub use executor::{AdmissionPolicy, QueryExecutor, QueryReply, QueryRequest};
pub use results::{SearchHit, SearchResults};
pub use scrub::{ScrubPolicy, Scrubber};
pub use snapshot::Snapshot;
pub use telemetry::{Explain, ObsConfig, SlowOpEntry, SlowQueryEntry};
pub use update::{
    CommitStats, CompactStats, CrashPoint, PinnedSnapshot, ScrubCursor, ScrubReport,
    UpdatableXRank, UpdateError,
};
pub use wal::{SyncPolicy, WalConfig, WalFault};
pub use xrank_obs::{
    render_chrome_trace, render_chrome_trace_normalized, validate_chrome_trace, DegradeReason,
    FlightRecord, FlightRecorder, OpKind, OpOutcome, RecorderConfig, TraceCheck, TrackSummary,
};
